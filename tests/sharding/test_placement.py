"""Consistent-hash placement and lease-gated rebalancing."""

import pytest

from repro.errors import LeaseFencedError, ShardingError
from repro.sharding import ShardMap, placement_payload, rebalance
from repro.store import DocumentStore
from repro.store.lease import acquire_lease, lease_path, read_lease, verify_lease

KEYS = [f"doc-{i:03d}" for i in range(200)]


class TestShardMap:
    def test_placement_is_deterministic_and_total(self):
        a = ShardMap(["w1", "w2", "w3"])
        b = ShardMap(["w1", "w2", "w3"])
        for key in KEYS:
            assert a.place(key) == b.place(key)
            assert a.place(key) in a.workers

    def test_assignments_cover_every_key_once(self):
        shard_map = ShardMap(["w1", "w2", "w3"])
        assignments = shard_map.assignments(KEYS)
        flattened = [k for keys in assignments.values() for k in keys]
        assert sorted(flattened) == sorted(KEYS)

    def test_virtual_nodes_spread_the_load(self):
        shard_map = ShardMap(["w1", "w2", "w3", "w4"], vnodes=64)
        counts = {
            w: len(keys) for w, keys in shard_map.assignments(KEYS).items()
        }
        assert all(count > 0 for count in counts.values())

    def test_adding_a_worker_moves_about_one_nth(self):
        old = ShardMap(["w1", "w2", "w3"])
        new = old.with_worker("w4")
        moves = old.moves(KEYS, new)
        # every move lands on the new worker, and only ~1/4 of keys move
        assert all(target == "w4" for _, target in moves.values())
        assert 0 < len(moves) < len(KEYS) // 2

    def test_removing_a_worker_moves_only_its_keys(self):
        old = ShardMap(["w1", "w2", "w3"])
        new = old.without_worker("w2")
        owned = set(old.assignments(KEYS)["w2"])
        moves = old.moves(KEYS, new)
        assert set(moves) == owned

    def test_guards(self):
        with pytest.raises(ShardingError):
            ShardMap([])
        with pytest.raises(ShardingError):
            ShardMap(["w1"], vnodes=0)


class TestRebalance:
    @pytest.fixture
    def store_with_docs(self, tmp_path, workload):
        store = DocumentStore.init(tmp_path / "fleet")
        doc_ids = [f"doc-{i:02d}" for i in range(8)]
        for doc_id in doc_ids:
            store.put(doc_id, workload.source, workload.dtd, workload.annotation)
        return store, doc_ids

    def test_rebalance_hands_leases_to_new_owners(self, store_with_docs):
        store, doc_ids = store_with_docs
        current = ShardMap(["w1", "w2"])
        target = current.with_worker("w3")
        moves = rebalance(store, doc_ids, current, target)
        assert moves, "adding a worker should move at least one document"
        for move in moves:
            assert move.target == "w3"
            lease = read_lease(lease_path(store._doc_dir(move.doc_id)))
            assert lease.owner == "w3" and lease.epoch == move.epoch

    def test_rebalance_fences_the_previous_writer(self, store_with_docs):
        store, doc_ids = store_with_docs
        current = ShardMap(["w1", "w2"])
        target = current.with_worker("w3")
        moving = next(iter(current.moves(doc_ids, target)))
        path = lease_path(store._doc_dir(moving))
        held = acquire_lease(path, "w1")  # the old owner holds it
        rebalance(store, doc_ids, current, target)
        with pytest.raises(LeaseFencedError):
            verify_lease(path, held)  # the old owner is fenced

    def test_fenced_leases_refuse_unless_forced(self, store_with_docs):
        store, doc_ids = store_with_docs
        current = ShardMap(["w1", "w2"])
        target = current.with_worker("w3")
        moving = next(iter(current.moves(doc_ids, target)))
        path = lease_path(store._doc_dir(moving))
        acquire_lease(path, "promoted-standby", fence=True)
        with pytest.raises(LeaseFencedError):
            rebalance(store, doc_ids, current, target)
        moves = rebalance(store, doc_ids, current, target, force=True)
        assert any(m.doc_id == moving for m in moves)

    def test_placement_payload_flags_disagreements(self, store_with_docs):
        store, doc_ids = store_with_docs
        shard_map = ShardMap(["w1", "w2"])
        some_doc = doc_ids[0]
        owner = shard_map.place(some_doc)
        other = next(w for w in shard_map.workers if w != owner)
        acquire_lease(lease_path(store._doc_dir(some_doc)), other)
        payload = placement_payload(store, shard_map, doc_ids)
        entry = next(
            e for e in payload["workers"][owner] if e["doc_id"] == some_doc
        )
        assert entry["owned_elsewhere"] and entry["lease_owner"] == other
