"""`ShardedDocument`: the facade — in-memory, process-mode, durable."""

import random

import pytest

from repro.editing import UpdateBuilder
from repro.errors import ShardingError
from repro.generators.updates import random_view_update
from repro.sharding import SHARDING_FILE, ShardedDocument
from repro.xmltree import parse_term


def _interior_update(workload):
    view = workload.annotation.view(workload.source)
    edit = UpdateBuilder(view, forbidden_ids=workload.source.nodes())
    edit.delete("e5_0")
    edit.insert("p1", parse_term("symptom#u0"), index=2)
    return edit.script()


def _stream(engine, workload, seed, steps=5):
    """A pregenerated stream of sequential random updates (built against
    the evolving view via a scratch session)."""
    rng = random.Random(seed)
    scratch = engine.session(workload.source)
    updates = []
    for _ in range(steps):
        update = random_view_update(
            rng, workload.dtd, workload.annotation, scratch.source, n_ops=2
        )
        updates.append(update)
        scratch.propagate(update)
    return updates


class TestInMemory:
    def test_matches_unsharded_session_on_a_stream(
        self, deep_workload, engine_for
    ):
        engine = engine_for(deep_workload)
        session = engine.session(deep_workload.source)
        with ShardedDocument(engine, deep_workload.source, depth=2) as doc:
            for update in _stream(engine, deep_workload, seed=11):
                assert (
                    doc.propagate(update).to_term()
                    == session.propagate(update).to_term()
                )
            assert doc.source.to_term() == session.source.to_term()
            assert doc.view.to_term() == engine.view(session.source).to_term()

    def test_rejects_invalid_source_and_unknown_mode(
        self, deep_workload, engine_for
    ):
        engine = engine_for(deep_workload)
        with pytest.raises(ShardingError):
            ShardedDocument(engine, deep_workload.source, mode="fiber")
        from repro.errors import ReproError

        bad = parse_term("hospital#h(symptom#s)")
        with pytest.raises(ReproError):
            ShardedDocument(engine, bad, depth=1)

    def test_serve_with_dirty_hints_and_no_splice(
        self, deep_workload, engine_for
    ):
        engine = engine_for(deep_workload)
        session = engine.session(deep_workload.source)
        update = _interior_update(deep_workload)
        baseline = session.propagate(update)
        with ShardedDocument(engine, deep_workload.source, depth=2) as doc:
            (result,) = doc.serve([update], dirty_hints=[["e5_0", "u0"]])
            assert result.script is None and not result.boundary
            assert result.cost == baseline.cost
            assert doc.source.to_term() == session.source.to_term()


class TestProcessMode:
    def test_matches_unsharded_across_processes(self, deep_workload, engine_for):
        engine = engine_for(deep_workload)
        session = engine.session(deep_workload.source)
        with ShardedDocument(
            engine, deep_workload.source, depth=2, mode="process", workers=2
        ) as doc:
            assert doc.mode == "process"
            for update in _stream(engine, deep_workload, seed=23, steps=3):
                assert (
                    doc.propagate(update).to_term()
                    == session.propagate(update).to_term()
                )


class TestDurable:
    def test_create_serve_reopen_round_trip(
        self, deep_workload, engine_for, tmp_path
    ):
        engine = engine_for(deep_workload)
        session = engine.session(deep_workload.source)
        root = tmp_path / "sharded"
        doc = ShardedDocument.create(
            root,
            deep_workload.source,
            deep_workload.dtd,
            deep_workload.annotation,
            depth=2,
        )
        assert doc.durable and (root / SHARDING_FILE).is_file()
        updates = _stream(engine, deep_workload, seed=7, steps=4)
        for update in updates:
            assert (
                doc.propagate(update).to_term()
                == session.propagate(update).to_term()
            )
        expected = doc.source.to_term()
        doc.close()

        reopened = ShardedDocument.open(root)
        try:
            assert reopened.source.to_term() == expected
            assert reopened.source.to_term() == session.source.to_term()
            assert reopened.shard_roots and reopened.depth == 2
            # and it keeps serving: one more interior-or-boundary update
            view = engine.view(reopened.source)
            edit = UpdateBuilder(view, forbidden_ids=reopened.source.nodes())
            target = next(
                n for n in view.nodes() if view.label(n) == "symptom"
            )
            edit.delete(target)
            update = edit.script()
            assert (
                reopened.propagate(update).to_term()
                == session.propagate(update).to_term()
            )
        finally:
            reopened.close()

    def test_boundary_update_rewrites_the_layout(
        self, deep_workload, engine_for, tmp_path
    ):
        import json

        engine = engine_for(deep_workload)
        root = tmp_path / "sharded"
        doc = ShardedDocument.create(
            root,
            deep_workload.source,
            deep_workload.dtd,
            deep_workload.annotation,
            depth=2,
        )
        before = json.loads((root / SHARDING_FILE).read_text())
        view = engine.view(doc.source)
        edit = UpdateBuilder(view, forbidden_ids=doc.source.nodes())
        edit.delete("p3")  # a whole patient: reshard
        doc.propagate(edit.script())
        after = json.loads((root / SHARDING_FILE).read_text())
        assert len(after["shards"]) == len(before["shards"]) - 1
        assert all(entry["id"] != "p3" for entry in after["shards"])
        doc.close()

    def test_open_refuses_a_plain_store(self, tmp_path, workload):
        from repro.store import DocumentStore

        store = DocumentStore.init(tmp_path / "plain")
        store.put("doc", workload.source, workload.dtd, workload.annotation)
        store.close()
        with pytest.raises(ShardingError):
            ShardedDocument.open(tmp_path / "plain")

    def test_stats_payload_reports_per_shard_wal(
        self, deep_workload, tmp_path
    ):
        root = tmp_path / "sharded"
        doc = ShardedDocument.create(
            root,
            deep_workload.source,
            deep_workload.dtd,
            deep_workload.annotation,
            depth=2,
        )
        update = _interior_update(deep_workload)
        doc.propagate(update)
        payload = doc.stats_payload()
        assert payload["durable"] and payload["edits"]["fast"] == 1
        assert set(payload["docs"]) == {str(s) for s in doc.shard_roots}
        doc.close()
