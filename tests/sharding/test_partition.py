"""Boundary-split partitioning: the spine/shard cut and its inverse."""

import pytest

from repro.errors import ShardingError
from repro.generators.workloads import deep_document, hospital, running_example
from repro.sharding import partition, reassemble
from repro.xmltree import Tree, parse_term
from repro.views import Annotation


class TestPartition:
    def test_round_trips_at_every_depth(self):
        for workload in (running_example(4), hospital(), deep_document(5)):
            height = max(
                len(list(_ancestors(workload.source, n)))
                for n in workload.source.nodes()
            )
            for depth in range(1, height + 2):
                plan = partition(workload.source, workload.annotation, depth)
                rebuilt = reassemble(plan.spine, plan.shards)
                assert rebuilt.to_term() == workload.source.to_term(), (
                    workload.name,
                    depth,
                )

    def test_shard_roots_are_visible_depth_d_nodes_in_document_order(self):
        w = hospital()
        plan = partition(w.source, w.annotation, 2)
        view = w.annotation.view(w.source)
        expected = [
            n
            for n in view.nodes()  # preorder == document order
            if len(list(_ancestors(view, n))) == 2
        ]
        assert list(plan.shard_roots) == expected

    def test_shards_carry_hidden_descendants(self):
        w = hospital()  # admission subtrees are hidden under patients
        plan = partition(w.source, w.annotation, 2)
        shard_nodes = set()
        for tree in plan.shards.values():
            shard_nodes.update(tree.nodes())
        hidden = set(w.source.nodes()) - set(w.annotation.view(w.source).nodes())
        assert hidden & shard_nodes, "hidden content should live inside shards"
        rebuilt = reassemble(plan.spine, plan.shards)
        assert set(rebuilt.nodes()) == set(w.source.nodes())

    def test_hidden_subtrees_at_the_boundary_stay_in_the_spine(self):
        annotation = Annotation.hiding(("r", "h"))
        source = parse_term("r#n0(h#n1(x#n2), a#n3(x#n4))")
        plan = partition(source, annotation, 1)
        assert plan.shard_roots == ("n3",)
        assert "n1" in plan.spine.nodes() and "n2" in plan.spine.nodes()

    def test_depth_beyond_height_yields_no_shards(self):
        w = running_example(2)
        plan = partition(w.source, w.annotation, 99)
        assert plan.shard_roots == ()
        assert plan.spine.to_term() == w.source.to_term()

    def test_invalid_depth_and_empty_document_raise(self):
        w = running_example(2)
        with pytest.raises(ShardingError):
            partition(w.source, w.annotation, 0)
        with pytest.raises(ShardingError):
            partition(Tree.empty(), w.annotation, 1)

    def test_reassemble_rejects_foreign_and_misrooted_shards(self):
        w = running_example(2)
        plan = partition(w.source, w.annotation, 1)
        sid = plan.shard_roots[0]
        with pytest.raises(ShardingError):
            reassemble(plan.spine, {"nope": plan.shards[sid]})
        other = plan.shards[plan.shard_roots[1]]
        with pytest.raises(ShardingError):
            reassemble(plan.spine, {sid: other})


def _ancestors(tree, node):
    current = tree.parent(node)
    while current is not None:
        yield current
        current = tree.parent(current)
