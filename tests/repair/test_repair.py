"""Tests for the repair baseline, incl. the Section 6.2 counter-example."""

import random

import pytest

from repro import paperdata
from repro.core import propagate, verify_propagation
from repro.dtd import DTD
from repro.errors import NoInversionError
from repro.generators import random_annotation, random_dtd, random_tree, random_view_update
from repro.repair import compare_with_propagation, repair_distance, repair_update
from repro.views import Annotation
from repro.xmltree import parse_term


class TestSection62Example:
    """D3 = r → b·(c+ε)·(a·c)*, hidden b and a, t = r(b,a,c)."""

    def test_repair_picks_the_closer_wrong_tree(self):
        dtd, annotation = paperdata.d3(), paperdata.a3()
        source = paperdata.d3_source()
        update = paperdata.d3_updated_view()
        result = repair_update(dtd, annotation, source, update.output_tree)
        # the paper: t1 = r(b,c,a,c) is closer (distance 1) than t2 (distance 2)
        assert result.distance == 1
        assert result.tree.shape() == parse_term("r(b, c, a, c)").shape()

    def test_repair_output_is_a_valid_inverse_shape(self):
        dtd, annotation = paperdata.d3(), paperdata.a3()
        source = paperdata.d3_source()
        update = paperdata.d3_updated_view()
        result = repair_update(dtd, annotation, source, update.output_tree)
        assert dtd.validates(result.tree)
        assert annotation.view(result.tree).isomorphic(update.output_tree)

    def test_repair_violates_side_effect_freeness(self):
        """The old c#m3 ends up *after* the new c: the view changes ids."""
        dtd, annotation = paperdata.d3(), paperdata.a3()
        source = paperdata.d3_source()
        update = paperdata.d3_updated_view()
        report = compare_with_propagation(dtd, annotation, source, update)
        assert report.repair_view_isomorphic        # looks right...
        assert not report.repair_side_effect_free   # ...but is not

    def test_repaired_view_scrambles_node_positions(self):
        dtd, annotation = paperdata.d3(), paperdata.a3()
        source = paperdata.d3_source()
        update = paperdata.d3_updated_view()
        result = repair_update(dtd, annotation, source, update.output_tree)
        repaired_view = annotation.view(result.tree)
        kids = repaired_view.children(repaired_view.root)
        # the kept source node m3 is the SECOND c in the repaired view,
        # but the user's update demands it stays FIRST
        assert kids[1] == "m3"
        assert update.output_tree.children("m0")[0] == "m3"

    def test_propagation_gets_it_right(self):
        """The paper's t2 = r(b,a,c,a,c): costlier but side-effect free."""
        dtd, annotation = paperdata.d3(), paperdata.a3()
        source = paperdata.d3_source()
        update = paperdata.d3_updated_view()
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)
        assert script.cost == 2
        assert script.output_tree.shape() == parse_term("r(b, a, c, a, c)").shape()
        report = compare_with_propagation(dtd, annotation, source, update)
        assert report.propagation_cost == 2
        assert report.repair.distance < report.propagation_cost

    def test_summary_renders(self):
        dtd, annotation = paperdata.d3(), paperdata.a3()
        report = compare_with_propagation(
            dtd, annotation, paperdata.d3_source(), paperdata.d3_updated_view()
        )
        assert "side-effect free=False" in report.summary()


class TestRepairDistance:
    def test_zero_distance_for_own_view(self):
        """Repairing t against A(t) costs nothing (t repairs itself)."""
        dtd, annotation = paperdata.d0(), paperdata.a0()
        source = paperdata.t0()
        view = annotation.view(source)
        assert repair_distance(dtd, annotation, source, view) == 0

    def test_self_repair_returns_source(self):
        dtd, annotation = paperdata.d0(), paperdata.a0()
        source = paperdata.t0()
        result = repair_update(dtd, annotation, source, annotation.view(source))
        assert result.tree == source

    def test_distance_counts_deleted_subtrees(self):
        dtd, annotation = paperdata.d0(), paperdata.a0()
        source = paperdata.t0()
        view = annotation.view(source)
        # drop one (a, d)-group from the view: a#n1 plus d#n3(c#n8)
        target = view.delete_subtree("n1").delete_subtree("n3")
        distance = repair_distance(dtd, annotation, source, target)
        # must delete a#n1 (1), hidden b#n2 (1), d#n3 subtree (3)
        assert distance == 5

    def test_distance_symmetric_in_insertion(self):
        dtd = DTD({"r": "(a,h)*", "h": ""})
        annotation = Annotation.hiding(("r", "h"))
        source = parse_term("r#s0(a#s1, h#s2)")
        target = parse_term("r#s0(a#s1, a#v0)")
        # insert visible a (1) + hidden h (1)
        assert repair_distance(dtd, annotation, source, target) == 2

    def test_root_label_mismatch_rejected(self):
        dtd = DTD({"r": "a*"})
        with pytest.raises(NoInversionError):
            repair_distance(
                dtd, Annotation.identity(), parse_term("r#x"), parse_term("a#y")
            )

    def test_unreachable_view_rejected(self):
        dtd = DTD({"r": "a*"})
        with pytest.raises(NoInversionError):
            repair_distance(
                dtd, Annotation.identity(), parse_term("r#x"), parse_term("r#y(b#z)")
            )


class TestRepairVsPropagationRandom:
    """The baseline is never *better* informed: when it happens to be
    side-effect free its distance equals the propagation cost; and it is
    measurably often wrong."""

    @pytest.mark.parametrize("seed", range(25))
    def test_repair_distance_lower_bounds_propagation_cost(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, rng.randint(3, 5))
        annotation = random_annotation(rng, dtd, hide_probability=0.35)
        source = random_tree(dtd, rng, root_label="l0", size_hint=12)
        update = random_view_update(rng, dtd, annotation, source, n_ops=2)
        report = compare_with_propagation(dtd, annotation, source, update)
        # dropping information can only make the tree look closer
        assert report.repair.distance <= report.propagation_cost
        # repair always lands in the inverse language
        assert report.repair_view_isomorphic
        assert dtd.validates(report.repair.tree)

    def test_violation_rate_positive_on_positional_workload(self):
        """Scaled D3-style workloads: appending to a list of c's whose
        positions repair cannot distinguish."""
        dtd, annotation = paperdata.d3(), paperdata.a3()
        violations = 0
        total = 0
        for extra in range(4):
            # source with `extra` trailing (a, c) groups
            groups = ", ".join(f"a#g{i}, c#h{i}" for i in range(extra))
            term = f"r#m0(b#m1, a#m2, c#m3{', ' + groups if groups else ''})"
            source = parse_term(term)
            view = annotation.view(source)
            from repro.editing import UpdateBuilder

            builder = UpdateBuilder(view, forbidden_ids=source.nodes())
            builder.insert("m0", parse_term("c#u0"), index=1)
            update = builder.script()
            report = compare_with_propagation(dtd, annotation, source, update)
            total += 1
            if not report.repair_side_effect_free:
                violations += 1
        assert total == 4
        assert violations >= 3  # the baseline is wrong almost always here
