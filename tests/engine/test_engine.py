"""The compiled ViewEngine layer: compile-once semantics, batch
equivalence, and wrapper/engine result identity on the paper's running
example."""

import pytest

import repro.engine as engine_module
from repro import (
    Annotation,
    DTD,
    InsertletPackage,
    UpdateBuilder,
    ViewEngine,
    invert,
    parse_term,
    propagate,
    parse_dtd,
    validate_view_update,
    verify_propagation,
)
from repro.errors import InvalidViewUpdateError


@pytest.fixture
def running_example():
    """The paper's D0 / A0 / t0 / S0."""
    dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
    annotation = Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))
    source = parse_term(
        "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
    )
    view = annotation.view(source)
    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.delete("n1")
    edit.delete("n3")
    edit.insert_after("n4", parse_term("d#n11(c#n13, c#n14)"))
    edit.insert_after("n11", parse_term("a#n12"))
    edit.insert("n6", parse_term("c#n15"))
    return dtd, annotation, source, view, edit.script()


def more_updates(annotation, source):
    """A few distinct valid view updates of the running example."""
    view = annotation.view(source)
    updates = []

    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.insert("n3", parse_term("c#u0"))
    updates.append(edit.script())

    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.delete("n4")
    edit.delete("n6")
    updates.append(edit.script())

    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.insert_after("n6", parse_term("a#u1"))
    edit.insert_after("u1", parse_term("d#u2(c#u3)"))
    updates.append(edit.script())

    return updates


class TestCompileOnce:
    def test_artifacts_are_identity_stable(self, running_example):
        dtd, annotation, *_ = running_example
        engine = ViewEngine(dtd, annotation)
        assert engine.view_dtd is engine.view_dtd
        assert engine.factory is engine.factory
        assert engine.minimal_sizes is engine.minimal_sizes
        assert engine.hidden_table is engine.hidden_table
        assert engine.visible_table is engine.visible_table

    def test_artifacts_survive_requests(self, running_example):
        dtd, annotation, source, view, update = running_example
        engine = ViewEngine(dtd, annotation)
        vdtd = engine.view_dtd
        factory = engine.factory
        engine.propagate(source, update)
        engine.invert(view)
        engine.validate(source, update)
        assert engine.view_dtd is vdtd
        assert engine.factory is factory

    def test_view_dtd_derived_exactly_once(self, running_example, monkeypatch):
        dtd, annotation, source, _, update = running_example
        calls = []
        real = engine_module.view_dtd

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_module, "view_dtd", counting)
        engine = ViewEngine(dtd, annotation)
        assert calls == []  # lazy: nothing derived before first use
        for _ in range(3):
            engine.propagate(source, update)
        assert len(calls) == 1

    def test_warm_up_compiles_everything_and_chains(self, running_example):
        dtd, annotation, *_ = running_example
        engine = ViewEngine(dtd, annotation)
        assert "nothing yet" in repr(engine)
        assert engine.warm_up() is engine
        for name in ("sizes", "factory", "view_dtd", "visibility"):
            assert name in repr(engine)

    def test_explicit_factory_is_used_verbatim(self, running_example):
        dtd, annotation, *_ = running_example
        package = InsertletPackage.minimal(dtd)
        engine = ViewEngine(dtd, annotation, factory=package)
        assert engine.factory is package

    def test_default_factory_is_the_compiled_minimal_factory(self, running_example):
        dtd, annotation, *_ = running_example
        engine = ViewEngine(dtd, annotation)
        assert engine.factory is engine.minimal_factory

    def test_insertlet_package_shares_compiled_fallback(self, running_example):
        dtd, annotation, source, _, update = running_example
        engine = ViewEngine(dtd, annotation)
        package = engine.insertlet_package({"b": parse_term("b#w0")})
        # explicit fragment and compiled-fallback labels both served
        assert package.weight("b") == 1
        assert package.weight("c") == engine.minimal_factory.weight("c")
        assert package._fallback is engine.minimal_factory
        # a second engine over the package needs no schema recompilation
        fast = ViewEngine(dtd, annotation, factory=package)
        assert (
            fast.propagate(source, update).to_term()
            == propagate(dtd, annotation, source, update, factory=package).to_term()
        )

    def test_compiled_tables_match_schema(self, running_example):
        dtd, annotation, *_ = running_example
        engine = ViewEngine(dtd, annotation)
        assert engine.hidden_table["r"] == ("b", "c")
        assert engine.hidden_table["d"] == ("a", "b")
        assert engine.visible_table["r"] == frozenset({"a", "d", "r"})
        assert engine.minimal_sizes == {"a": 1, "b": 1, "c": 1, "d": 1, "r": 1}
        assert engine.insert_weight("b") == 1
        # the derived view DTD is the paper's r → (a·d)*, d → c*
        assert engine.view_dtd.allows("r", ("a", "d", "a", "d"))
        assert not engine.view_dtd.allows("r", ("a", "b", "d"))
        assert engine.view_dtd.allows("d", ("c", "c", "c"))


class TestBatchEquivalence:
    def test_propagate_many_equals_independent_calls(self, running_example):
        dtd, annotation, source, _, update = running_example
        updates = [update, *more_updates(annotation, source)]
        engine = ViewEngine(dtd, annotation)
        batch = engine.propagate_many(source, updates)
        singles = [
            propagate(dtd, annotation, source, u) for u in updates
        ]
        assert len(batch) == len(singles)
        for got, expected in zip(batch, singles):
            assert got == expected
            assert got.to_term() == expected.to_term()

    def test_propagate_many_pairs_form(self, running_example):
        dtd, annotation, source, _, update = running_example
        engine = ViewEngine(dtd, annotation)
        pairs = [(source, u) for u in more_updates(annotation, source)]
        batch = engine.propagate_many(pairs)
        for (doc, u), script in zip(pairs, batch):
            assert verify_propagation(dtd, annotation, doc, u, script)

    def test_batch_results_verify(self, running_example):
        dtd, annotation, source, _, update = running_example
        engine = ViewEngine(dtd, annotation)
        for script, u in zip(
            engine.propagate_many(source, more_updates(annotation, source)),
            more_updates(annotation, source),
        ):
            assert engine.verify(source, u, script)

    def test_batch_validates_each_update(self, running_example):
        dtd, annotation, source, view, update = running_example
        engine = ViewEngine(dtd, annotation)
        bad_edit = UpdateBuilder(view, forbidden_ids=source.nodes())
        bad_edit.delete("n1")  # a alone cannot be removed: (a,(b|c),d)*
        with pytest.raises(InvalidViewUpdateError):
            engine.propagate_many(source, [update, bad_edit.script()])


class TestWrapperEquivalence:
    def test_propagate_wrapper_is_byte_identical(self, running_example):
        dtd, annotation, source, _, update = running_example
        engine = ViewEngine(dtd, annotation).warm_up()
        assert (
            propagate(dtd, annotation, source, update).to_term()
            == engine.propagate(source, update).to_term()
        )

    def test_invert_wrapper_is_identical(self, running_example):
        dtd, annotation, _, view, _ = running_example
        engine = ViewEngine(dtd, annotation)
        assert invert(dtd, annotation, view) == engine.invert(view)
        assert engine.verify_inverse(view, engine.invert(view))

    def test_validate_parity(self, running_example):
        dtd, annotation, source, view, update = running_example
        engine = ViewEngine(dtd, annotation)
        engine.validate(source, update)  # must not raise
        validate_view_update(dtd, annotation, source, update)
        bad = UpdateBuilder(view, forbidden_ids=source.nodes())
        bad.delete("n1")
        bad_update = bad.script()
        with pytest.raises(InvalidViewUpdateError):
            engine.validate(source, bad_update)
        with pytest.raises(InvalidViewUpdateError):
            validate_view_update(dtd, annotation, source, bad_update)

    def test_view_matches_annotation(self, running_example):
        dtd, annotation, source, view, _ = running_example
        engine = ViewEngine(dtd, annotation)
        assert engine.view(source) == view

    def test_insertlet_engine_matches_wrapper(self):
        dtd = parse_dtd(
            """
            <!ELEMENT catalog  (product*)>
            <!ELEMENT product  (title, margin)>
            <!ELEMENT title    (#PCDATA)>
            <!ELEMENT margin   (#PCDATA)>
            """
        )
        annotation = Annotation.hiding(("product", "margin"))
        source = parse_term(
            "catalog#c(product#p1(title#t1, margin#m1))"
        )
        view = annotation.view(source)
        edit = UpdateBuilder(view, forbidden_ids=source.nodes())
        edit.insert("c", parse_term("product#p2(title#t2)"))
        update = edit.script()
        package = InsertletPackage.from_terms(dtd, {"margin": "margin"})
        engine = ViewEngine(dtd, annotation, factory=package)
        assert (
            engine.propagate(source, update).to_term()
            == propagate(dtd, annotation, source, update, factory=package).to_term()
        )
