"""Size-aware chunk balancing for process-pool batches.

The PR-4 pool sliced batches contiguously, balancing chunk *counts*:
a skewed batch (a few huge documents amid many small ones) parked the
heavy requests in one slice and that worker straggled the whole batch.
These tests pin the LPT replacement — weight-balanced chunks, original
order restored on reassembly.
"""

import pytest

from repro.parallel import balanced_chunk_indices


class TestBalancedChunkIndices:
    def test_partitions_every_index_exactly_once(self):
        weights = [3, 1, 4, 1, 5, 9, 2, 6]
        chunks = balanced_chunk_indices(weights, 3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(len(weights)))

    def test_skewed_batch_does_not_straggle(self):
        # one giant request and many tiny ones: contiguous slicing puts
        # the giant plus neighbours in one slice; LPT isolates it
        weights = [1000] + [1] * 15
        chunks = balanced_chunk_indices(weights, 4)
        loads = sorted(sum(weights[i] for i in chunk) for chunk in chunks)
        assert loads[-1] == 1000  # the giant rides alone
        assert loads[0] >= 5  # the small ones spread across the rest

    def test_never_worse_than_twice_optimal(self):
        # the classic LPT bound: makespan <= 2 * optimal
        import random

        rng = random.Random(5)
        for _ in range(20):
            weights = [rng.randint(1, 100) for _ in range(rng.randint(1, 40))]
            bins = rng.randint(1, 8)
            chunks = balanced_chunk_indices(weights, bins)
            makespan = max(sum(weights[i] for i in chunk) for chunk in chunks)
            optimal_floor = max(max(weights), sum(weights) / min(bins, len(weights)))
            assert makespan <= 2 * optimal_floor

    def test_deterministic_and_order_preserving_within_chunks(self):
        weights = [5, 5, 5, 5, 5, 5]
        first = balanced_chunk_indices(weights, 3)
        second = balanced_chunk_indices(weights, 3)
        assert first == second
        for chunk in first:
            assert chunk == sorted(chunk)

    def test_more_chunks_than_items_collapses(self):
        assert balanced_chunk_indices([7, 7], 10) == [[0], [1]]
        assert balanced_chunk_indices([], 3) == []

    def test_rejects_non_positive_targets(self):
        with pytest.raises(ValueError):
            balanced_chunk_indices([1], 0)
