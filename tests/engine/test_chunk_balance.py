"""Size-aware chunk balancing for process-pool batches.

The PR-4 pool sliced batches contiguously, balancing chunk *counts*:
a skewed batch (a few huge documents amid many small ones) parked the
heavy requests in one slice and that worker straggled the whole batch.
These tests pin the LPT replacement — weight-balanced chunks, original
order restored on reassembly.
"""

import pytest

from repro.parallel import balanced_chunk_indices


class TestBalancedChunkIndices:
    def test_partitions_every_index_exactly_once(self):
        weights = [3, 1, 4, 1, 5, 9, 2, 6]
        chunks = balanced_chunk_indices(weights, 3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(len(weights)))

    def test_skewed_batch_does_not_straggle(self):
        # one giant request and many tiny ones: contiguous slicing puts
        # the giant plus neighbours in one slice; LPT isolates it
        weights = [1000] + [1] * 15
        chunks = balanced_chunk_indices(weights, 4)
        loads = sorted(sum(weights[i] for i in chunk) for chunk in chunks)
        assert loads[-1] == 1000  # the giant rides alone
        assert loads[0] >= 5  # the small ones spread across the rest

    def test_never_worse_than_twice_optimal(self):
        # the classic LPT bound: makespan <= 2 * optimal
        import random

        rng = random.Random(5)
        for _ in range(20):
            weights = [rng.randint(1, 100) for _ in range(rng.randint(1, 40))]
            bins = rng.randint(1, 8)
            chunks = balanced_chunk_indices(weights, bins)
            makespan = max(sum(weights[i] for i in chunk) for chunk in chunks)
            optimal_floor = max(max(weights), sum(weights) / min(bins, len(weights)))
            assert makespan <= 2 * optimal_floor

    def test_deterministic_and_order_preserving_within_chunks(self):
        weights = [5, 5, 5, 5, 5, 5]
        first = balanced_chunk_indices(weights, 3)
        second = balanced_chunk_indices(weights, 3)
        assert first == second
        for chunk in first:
            assert chunk == sorted(chunk)

    def test_more_chunks_than_items_collapses(self):
        assert balanced_chunk_indices([7, 7], 10) == [[0], [1]]
        assert balanced_chunk_indices([], 3) == []

    def test_rejects_non_positive_targets(self):
        with pytest.raises(ValueError):
            balanced_chunk_indices([1], 0)

    def test_never_emits_empty_chunks(self):
        # every returned chunk must carry work: an empty chunk would be
        # submitted to a worker that pays the engine-compile initializer
        # for nothing (and zip-reassembly would silently skip it)
        for n_items in range(0, 6):
            for target in range(1, 9):
                chunks = balanced_chunk_indices([1] * n_items, target)
                assert all(chunks), (n_items, target)
                flat = sorted(i for chunk in chunks for i in chunk)
                assert flat == list(range(n_items)), (n_items, target)


class TestProcessDispatchEdges:
    """Regressions: the wire hands the pool empty and tiny batches."""

    def _engine_and_batch(self):
        from repro.editing import EditScript
        from repro.engine import ViewEngine
        from repro.paperdata.figures import a0, d0
        from repro.xmltree import parse_term

        engine = ViewEngine(d0(), a0())
        source = parse_term(
            "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
        )
        update = EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
            "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))"
        )
        return engine, [(source, update)]

    def test_empty_batch_returns_empty(self):
        # used to crash: target_chunks = min(0, workers*4) = 0 raised
        # ValueError out of balanced_chunk_indices before any pool work
        from repro.core import CheapestPathChooser
        from repro.parallel import propagate_batch_processes

        engine, _ = self._engine_and_batch()
        scripts = propagate_batch_processes(
            engine, [], CheapestPathChooser(), True, True, workers=4
        )
        assert scripts == []

    def test_empty_batch_via_propagate_many(self):
        engine, _ = self._engine_and_batch()
        assert engine.propagate_many([], parallel="process", workers=4) == []

    def test_more_workers_than_requests_reassembles_exactly(self):
        # oversubscribed pool: the dispatch must clamp to one chunk per
        # request (no empty submissions) and return exactly one script
        # per request, in batch order
        engine, batch = self._engine_and_batch()
        serial = engine.propagate_many(list(batch))
        pooled = engine.propagate_many(
            list(batch), parallel="process", workers=8
        )
        assert [s.to_term() for s in pooled] == [s.to_term() for s in serial]
