"""Cross-request propagation memoization: hits, bypasses, invalidation.

The memo must be invisible in results (byte-identical scripts — the
property suite pins that against random workloads) and visible only in
time and counters. These tests pin the cache mechanics: keying by exact
request content, chooser keys, LRU eviction, the bypass conditions, and
the inversion-fragment cache shared across different requests.
"""

import pytest

from repro.core import (
    CheapestPathChooser,
    DEL_OVER_NOP_OVER_INS,
    PreferenceChooser,
)
from repro.core.choosers import chooser_from_key
from repro.editing import EditScript
from repro.engine import ViewEngine
from repro.errors import InvalidViewUpdateError
from repro.paperdata.figures import a0, d0
from repro.xmltree import parse_term


@pytest.fixture
def schema():
    return d0(), a0()


@pytest.fixture
def engine(schema):
    return ViewEngine(*schema)


@pytest.fixture
def source():
    return parse_term(
        "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
    )


@pytest.fixture
def update():
    return EditScript.parse(
        "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
        "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))"
    )


class TestMemoHits:
    def test_repeat_request_is_a_hit(self, engine, source, update):
        first = engine.propagate(source, update)
        second = engine.propagate(source, update)
        assert second is first  # the memo returns the cached script object
        stats = engine.stats
        assert (stats.memo_misses, stats.memo_hits) == (1, 1)

    def test_equal_content_different_objects_hit(self, engine, source, update):
        engine.propagate(source, update)
        clone_source = parse_term(source.to_term())
        clone_update = EditScript.parse(update.to_term())
        script = engine.propagate(clone_source, clone_update)
        assert engine.stats.memo_hits == 1
        assert script.to_term() == engine.propagate(source, update).to_term()

    def test_different_chooser_rebuilds_script_not_graphs(
        self, engine, source, update
    ):
        nop_first = engine.propagate(source, update)
        del_first = engine.propagate(
            source, update, chooser=PreferenceChooser(DEL_OVER_NOP_OVER_INS)
        )
        # both count as misses (no cached script for that chooser), but
        # the second shares the entry's graphs
        assert engine.stats.memo_misses == 2
        assert engine.stats.memo_hits == 0
        # each chooser's result equals its own memo-free baseline ...
        assert del_first.to_term() == engine.propagate(
            source,
            update,
            chooser=PreferenceChooser(DEL_OVER_NOP_OVER_INS),
            memo=False,
        ).to_term()
        # ... and each chooser now hits its own cached script
        assert engine.propagate(source, update) is nop_first
        assert (
            engine.propagate(
                source, update, chooser=PreferenceChooser(DEL_OVER_NOP_OVER_INS)
            )
            is del_first
        )

    def test_validation_runs_once_per_pair(self, engine, source, update):
        engine.propagate(source, update)
        engine.propagate(source, update)
        # an *invalid* update still fails on a repeat (never cached)
        bad = EditScript.parse("Nop.r#n0(Del.a#n1)")
        for _ in range(2):
            with pytest.raises(InvalidViewUpdateError):
                engine.propagate(source, bad)


class TestMemoBypass:
    def test_memo_false_bypasses(self, engine, source, update):
        engine.propagate(source, update, memo=False)
        engine.propagate(source, update, memo=False)
        stats = engine.stats
        assert stats.memo_hits == 0 and stats.memo_misses == 0
        assert stats.memo_bypass == 2

    def test_caller_fresh_bypasses(self, engine, source, update):
        from repro.xmltree import NodeIds

        engine.propagate(source, update, fresh=NodeIds("f", 100).fresh)
        assert engine.stats.memo_bypass == 1

    def test_unknown_chooser_bypasses(self, engine, source, update):
        class OddChooser(CheapestPathChooser):
            cache_key = None  # no canonical key

        engine.propagate(source, update, chooser=OddChooser())
        assert engine.stats.memo_bypass == 1

    def test_zero_capacity_disables(self, schema, source, update):
        engine = ViewEngine(*schema, memo_capacity=0)
        engine.propagate(source, update)
        engine.propagate(source, update)
        stats = engine.stats
        assert stats.memo_hits == 0 and stats.memo_bypass == 2


class TestMemoLifecycle:
    def test_lru_eviction_and_refill(self, schema, source, update):
        engine = ViewEngine(*schema, memo_capacity=1)
        other = EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Del.a#n4, Del.d#n6(Del.c#n10))"
        )
        baseline = engine.propagate(source, update, memo=False).to_term()
        engine.propagate(source, update)   # miss, cached
        engine.propagate(source, other)    # miss, evicts the first entry
        assert engine.stats.memo_evictions == 1
        # the evicted request must re-serve correctly (and re-cache)
        again = engine.propagate(source, update)
        assert again.to_term() == baseline
        assert engine.stats.memo_misses == 3

    def test_invalidate_memo(self, engine, source, update):
        engine.propagate(source, update)
        engine.invalidate_memo()
        engine.propagate(source, update)
        stats = engine.stats
        assert stats.memo_hits == 0
        assert stats.memo_misses == 2

    def test_stats_payload_carries_memo_counters(self, engine, source, update):
        engine.propagate(source, update)
        engine.propagate(source, update)
        payload = engine.stats.as_dict()
        assert payload["memo_hits"] == 1
        assert payload["memo_misses"] == 1
        assert "memo_evictions" in payload and "memo_bypass" in payload


class TestInversionFragmentCache:
    def test_identical_fragment_reuses_collection(self, engine, source):
        """Two *different* requests inserting the same fragment share one
        inversion-graph collection through the engine's fragment cache."""
        first = EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
            "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))"
        )
        second = EditScript.parse(
            "Nop.r#n0(Del.a#n1, Del.d#n3(Del.c#n8), Nop.a#n4, "
            "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))"
        )
        g1 = engine.propagation_graphs(source, first)
        g2 = engine.propagation_graphs(source, second)
        assert g1.insertions["u0"] is g2.insertions["u0"]

    def test_chooser_key_round_trip(self):
        for chooser in (
            PreferenceChooser(),
            PreferenceChooser(DEL_OVER_NOP_OVER_INS),
            CheapestPathChooser(),
        ):
            rebuilt = chooser_from_key(chooser.cache_key())
            assert type(rebuilt) is type(chooser)
            assert rebuilt.cache_key() == chooser.cache_key()
