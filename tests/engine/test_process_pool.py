"""Process-pool ``propagate_many``: envelopes, equivalence, refusals.

The property suite pins byte-identical results against the cold
baseline on random workloads; these tests pin the mechanics — chunk
reassembly order, insertlet-package shipping, and the explicit refusal
of envelopes that cannot cross the process boundary.
"""

import pytest

from repro.core import CheapestPathChooser, InsertletPackage
from repro.editing import EditScript
from repro.engine import ViewEngine
from repro.parallel import ProcessServingError, engine_spec
from repro.paperdata.figures import a0, d0
from repro.xmltree import parse_term


@pytest.fixture(scope="module")
def schema():
    return d0(), a0()


@pytest.fixture(scope="module")
def batch():
    source = parse_term(
        "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
    )
    updates = [
        EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
            "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))"
        ),
        EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Del.a#n4, "
            "Del.d#n6(Del.c#n10))"
        ),
        EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Nop.d#n3(Ins.c#u5, Nop.c#n8), Nop.a#n4, "
            "Nop.d#n6(Nop.c#n10))"
        ),
    ]
    return [(source, update) for update in updates]


class TestProcessPool:
    def test_matches_serial_in_order(self, schema, batch):
        engine = ViewEngine(*schema)
        serial = engine.propagate_many(list(batch))
        pooled = engine.propagate_many(list(batch), parallel="process", workers=2)
        assert [s.to_term() for s in pooled] == [s.to_term() for s in serial]

    def test_chunking_preserves_order_on_large_batches(self, schema, batch):
        engine = ViewEngine(*schema)
        large = list(batch) * 7  # several chunks per worker
        serial = engine.propagate_many(large)
        pooled = engine.propagate_many(large, parallel="process", workers=2)
        assert [s.to_term() for s in pooled] == [s.to_term() for s in serial]

    def test_insertlet_package_ships(self, schema, batch):
        dtd, annotation = schema
        package = InsertletPackage.minimal(dtd)
        engine = ViewEngine(dtd, annotation, factory=package)
        serial = engine.propagate_many(list(batch))
        pooled = engine.propagate_many(list(batch), parallel="process", workers=2)
        assert [s.to_term() for s in pooled] == [s.to_term() for s in serial]

    def test_custom_chooser_is_refused(self, schema, batch):
        class OddChooser(CheapestPathChooser):
            cache_key = None

        engine = ViewEngine(*schema)
        with pytest.raises(ProcessServingError):
            engine.propagate_many(
                list(batch), parallel="process", chooser=OddChooser()
            )

    def test_unreconstructible_factory_is_refused(self, schema):
        dtd, annotation = schema

        class OpaqueFactory:
            def weight(self, label):
                return 1

            def build(self, label, fresh):  # pragma: no cover - never called
                raise NotImplementedError

        engine = ViewEngine(dtd, annotation, factory=OpaqueFactory())
        with pytest.raises(ProcessServingError):
            engine_spec(engine)


class TestSpec:
    def test_spec_is_picklable_and_hash_stable(self, schema):
        import pickle

        engine = ViewEngine(*schema)
        spec = engine_spec(engine)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert spec[3] == engine.schema_hash
