"""Property-based tests for the tree substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree import NodeIds, Tree, parse_term

from .strategies import trees


class TestStructuralInvariants:
    @given(trees())
    def test_size_equals_preorder_length(self, tree: Tree):
        assert tree.size == len(list(tree.nodes()))
        assert tree.size == len(list(tree.postorder()))

    @given(trees())
    def test_every_nonroot_has_consistent_parent(self, tree: Tree):
        for node in tree.nodes():
            parent = tree.parent(node)
            if node == tree.root:
                assert parent is None
            else:
                assert node in tree.children(parent)

    @given(trees())
    def test_subtree_sizes_sum(self, tree: Tree):
        total = sum(tree.subtree(kid).size for kid in tree.children(tree.root))
        assert tree.size == 1 + total

    @given(trees())
    def test_depth_height_consistency(self, tree: Tree):
        assert max(tree.depth(node) for node in tree.nodes()) == tree.height()

    @given(trees())
    def test_descendant_relation_irreflexive(self, tree: Tree):
        for node in list(tree.nodes())[:10]:
            assert not tree.is_descendant(node, node)


class TestRoundTrips:
    @given(trees())
    def test_term_round_trip_identity(self, tree: Tree):
        assert parse_term(tree.to_term()) == tree

    @given(trees())
    def test_xml_round_trip_identity(self, tree: Tree):
        from repro.xmltree import tree_from_xml, tree_to_xml

        assert tree_from_xml(tree_to_xml(tree)) == tree

    @given(trees())
    def test_fresh_ids_isomorphic_disjoint(self, tree: Tree):
        fresh = tree.with_fresh_ids(NodeIds("q").fresh)
        assert fresh.isomorphic(tree)
        assert fresh.node_set.isdisjoint(tree.node_set)

    @given(trees())
    def test_isomorphism_mapping_is_relabelling(self, tree: Tree):
        fresh = tree.with_fresh_ids(NodeIds("q").fresh)
        mapping = tree.isomorphism(fresh)
        assert mapping is not None
        assert tree.relabel_nodes(mapping) == fresh

    @given(trees())
    def test_shape_invariant_under_relabelling(self, tree: Tree):
        assert tree.with_fresh_ids().shape() == tree.shape()


class TestEditingOperations:
    @given(trees(), st.data())
    def test_delete_then_size(self, tree: Tree, data):
        nodes = [n for n in tree.nodes() if n != tree.root]
        if not nodes:
            return
        victim = data.draw(st.sampled_from(nodes))
        removed = tree.subtree(victim).size
        smaller = tree.delete_subtree(victim)
        assert smaller.size == tree.size - removed
        assert victim not in smaller

    @given(trees(), st.data())
    def test_insert_then_delete_identity(self, tree: Tree, data):
        parent = data.draw(st.sampled_from(list(tree.nodes())))
        index = data.draw(st.integers(0, len(tree.children(parent))))
        extra = Tree.leaf("z", "zz")
        grown = tree.insert_subtree(parent, index, extra)
        assert grown.size == tree.size + 1
        assert grown.delete_subtree("zz") == tree

    @given(trees(), st.data())
    def test_replace_subtree_preserves_rest(self, tree: Tree, data):
        nodes = [n for n in tree.nodes() if n != tree.root]
        if not nodes:
            return
        victim = data.draw(st.sampled_from(nodes))
        replacement = Tree.leaf("z", "zz")
        replaced = tree.replace_subtree(victim, replacement)
        expected = tree.size - tree.subtree(victim).size + 1
        assert replaced.size == expected
        assert "zz" in replaced

    @given(trees())
    @settings(max_examples=50)
    def test_map_labels_preserves_structure(self, tree: Tree):
        upper = tree.map_labels(str.upper)
        assert upper.node_set == tree.node_set
        for node in tree.nodes():
            assert upper.children(node) == tree.children(node)
