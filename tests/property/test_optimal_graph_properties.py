"""Property tests for optimal-subgraph invariants on random instances.

The facts the Section 4/5 algorithms rest on:

* every path enumerated in an optimal subgraph costs exactly OPT;
* optimal subgraphs are DAGs (counting terminates);
* the greedy preference walk always reaches a target and its path costs
  OPT;
* the cheapest path on the full graph costs the same OPT.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PreferenceChooser, propagation_graphs
from repro.generators import (
    random_annotation,
    random_dtd,
    random_tree,
    random_view_update,
)
from repro.graphutil import cheapest_path, count_paths, enumerate_paths
from repro.inversion import inversion_graphs


def make_instance(seed: int):
    rng = random.Random(seed)
    dtd = random_dtd(rng, rng.randint(3, 5))
    annotation = random_annotation(rng, dtd, hide_probability=0.4)
    source = random_tree(dtd, rng, root_label="l0", size_hint=rng.randint(4, 16))
    update = random_view_update(rng, dtd, annotation, source, n_ops=2)
    return dtd, annotation, source, update


class TestOptimalPropagationGraphs:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_all_optimal_paths_cost_opt(self, seed):
        dtd, annotation, source, update = make_instance(seed)
        collection = propagation_graphs(dtd, annotation, source, update)
        for node in collection:
            optimal = collection.optimal(node)
            paths = list(
                enumerate_paths(
                    optimal.source, optimal.targets, optimal.edges_from,
                    max_paths=25,
                )
            )
            assert paths, f"optimal graph of {node!r} has no path"
            for path in paths:
                assert sum(e.weight for e in path) == optimal.cost

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_optimal_graphs_are_dags(self, seed):
        dtd, annotation, source, update = make_instance(seed)
        collection = propagation_graphs(dtd, annotation, source, update)
        for node in collection:
            optimal = collection.optimal(node)
            # CycleError would propagate out of count_paths
            assert count_paths(
                optimal.source, optimal.targets, optimal.edges_from
            ) >= 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_greedy_walk_matches_opt(self, seed):
        dtd, annotation, source, update = make_instance(seed)
        collection = propagation_graphs(dtd, annotation, source, update)
        chooser = PreferenceChooser()
        for node in collection:
            optimal = collection.optimal(node)
            path = chooser.choose(optimal)
            assert sum(e.weight for e in path) == optimal.cost
            assert path == () or path[-1].target in optimal.targets

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_full_graph_cheapest_equals_opt(self, seed):
        dtd, annotation, source, update = make_instance(seed)
        collection = propagation_graphs(dtd, annotation, source, update)
        for node in collection:
            graph = collection[node]
            path = cheapest_path(graph.source, graph.targets, graph.edges_from)
            assert path is not None
            assert sum(e.weight for e in path) == collection.optimal(node).cost


class TestOptimalInversionGraphs:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_inversion_optimal_paths_cost_opt(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, rng.randint(3, 5))
        annotation = random_annotation(rng, dtd, hide_probability=0.4)
        source = random_tree(dtd, rng, root_label="l0", size_hint=10)
        view = annotation.view(source)
        graphs = inversion_graphs(dtd, annotation, view)
        for node in graphs:
            optimal = graphs.optimal(node)
            assert optimal.cost == graphs.costs[node]
            for path in enumerate_paths(
                optimal.source, optimal.targets, optimal.edges_from, max_paths=25
            ):
                assert sum(e.weight for e in path) == optimal.cost
