"""Property-based tests for annotations, views, and editing scripts."""

from hypothesis import given
from hypothesis import strategies as st

from repro.editing import EditScript, Op
from repro.views import Annotation
from repro.xmltree import Tree

from .strategies import LABELS, trees


@st.composite
def annotations(draw) -> Annotation:
    pairs = draw(
        st.sets(
            st.tuples(st.sampled_from(LABELS), st.sampled_from(LABELS)),
            max_size=6,
        )
    )
    return Annotation.hiding(*pairs)


class TestViewProperties:
    @given(trees(), annotations())
    def test_visibility_upward_closed(self, tree: Tree, annotation: Annotation):
        visible = annotation.visible_nodes(tree)
        for node in visible:
            parent = tree.parent(node)
            while parent is not None:
                assert parent in visible
                parent = tree.parent(parent)

    @given(trees(), annotations())
    def test_root_always_visible(self, tree: Tree, annotation: Annotation):
        assert tree.root in annotation.visible_nodes(tree)

    @given(trees(), annotations())
    def test_view_nodes_are_visible_nodes(self, tree: Tree, annotation: Annotation):
        view = annotation.view(tree)
        assert view.node_set == annotation.visible_nodes(tree)

    @given(trees(), annotations())
    def test_view_preserves_labels_and_order(self, tree, annotation):
        view = annotation.view(tree)
        for node in view.nodes():
            assert view.label(node) == tree.label(node)
            view_kids = list(view.children(node))
            original_order = [k for k in tree.children(node) if k in view.node_set]
            assert view_kids == original_order

    @given(trees(), annotations())
    def test_view_idempotent(self, tree, annotation):
        view = annotation.view(tree)
        assert annotation.view(view) == view

    @given(trees())
    def test_identity_annotation(self, tree):
        assert Annotation.identity().view(tree) == tree

    @given(trees(), annotations())
    def test_view_size_bounds(self, tree, annotation):
        view = annotation.view(tree)
        assert 1 <= view.size <= tree.size


@st.composite
def scripts(draw) -> EditScript:
    """Random well-formed editing scripts (renaming extension included)."""
    counter = [0]

    def build(depth: int, forced: Op | None):
        node = f"s{counter[0]}"
        counter[0] += 1
        op = forced if forced is not None else draw(st.sampled_from(list(Op)))
        label = draw(st.sampled_from(LABELS))
        target = None
        if op is Op.REN:
            target = draw(st.sampled_from([one for one in LABELS if one != label]))
        if depth >= 3:
            children = []
        else:
            # descendants of Ins are Ins, of Del are Del
            child_force = op if op in (Op.INS, Op.DEL) else None
            children = [
                build(depth + 1, child_force)
                for _ in range(draw(st.integers(0, 3 if depth < 2 else 1)))
            ]
        from repro.editing import EditLabel

        return Tree.build(EditLabel(op, label, target), node, [c for c in children])

    return EditScript(build(0, None))


class TestScriptProperties:
    @given(scripts())
    def test_cost_plus_phantoms_equals_size(self, script: EditScript):
        phantoms = sum(1 for n in script.nodes() if script.op(n) is Op.NOP)
        assert script.cost + phantoms == script.size

    @given(scripts())
    def test_in_out_node_partition(self, script: EditScript):
        in_nodes = script.input_tree.node_set
        out_nodes = script.output_tree.node_set
        for node in script.nodes():
            op = script.op(node)
            assert (node in in_nodes) == (op is not Op.INS)
            assert (node in out_nodes) == (op is not Op.DEL)

    @given(scripts())
    def test_size_accounting(self, script: EditScript):
        ins = sum(1 for n in script.nodes() if script.op(n) is Op.INS)
        dels = sum(1 for n in script.nodes() if script.op(n) is Op.DEL)
        rens = sum(1 for n in script.nodes() if script.op(n) is Op.REN)
        assert script.input_tree.size == script.size - ins
        assert script.output_tree.size == script.size - dels
        assert script.cost == ins + dels + rens

    @given(scripts())
    def test_renamed_nodes_change_label_between_sides(self, script: EditScript):
        for node in script.nodes():
            if script.op(node) is Op.REN:
                assert script.input_tree.label(node) == script.symbol(node)
                assert script.output_tree.label(node) == script.output_symbol(node)
                assert script.symbol(node) != script.output_symbol(node)

    @given(scripts())
    def test_term_round_trip(self, script: EditScript):
        assert EditScript.parse(script.to_term()) == script

    @given(scripts())
    def test_apply_to_input(self, script: EditScript):
        assert script.apply_to(script.input_tree) == script.output_tree

    @given(trees())
    def test_phantom_of_tree_is_identity(self, tree: Tree):
        script = EditScript.phantom(tree)
        assert script.apply_to(tree) == tree
        assert script.cost == 0

    @given(trees())
    def test_insertion_deletion_duality(self, tree: Tree):
        insertion = EditScript.insertion(tree)
        deletion = EditScript.deletion(tree)
        assert insertion.output_tree == deletion.input_tree == tree
        assert insertion.input_tree.is_empty
        assert deletion.output_tree.is_empty
        assert insertion.cost == deletion.cost == tree.size
