"""Differential property tests for the serving tier.

The serving layers — registry-shared engines, :class:`DocumentSession`
streams, parallel ``propagate_many`` — are *pure plumbing*: they change
where cached artifacts come from, never the algorithm. For randomly
generated (DTD, annotation, document, update-stream) workloads, every
serving path must therefore return scripts **byte-identical** (same term
rendering, identifiers included) to the cold baseline: a fresh transient
:class:`ViewEngine` per request, compiled from scratch.

This is the regime where amortisation bugs hide (stale caches, shared
mutable state, identifier drift after deletions), as argued for
side-effect-free translation in *Update XML Views* (Liu et al.) and for
well-behaved update strategies in *Programmable View Update Strategies
on Relations* (Tran et al.).
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import EngineRegistry, ViewEngine
from repro.generators.dtds import random_annotation, random_dtd
from repro.generators.trees import random_tree
from repro.generators.updates import random_view_update


def _workload(seed: int, steps: int):
    """A coherent random serving workload: schema + a sequential stream.

    Returns ``(dtd, annotation, source, stream)`` where ``stream`` is a
    list of ``(document, update, cold_script)`` triples: each update is a
    valid view update of its document's view, each document is the
    previous cold propagation's output. The cold scripts come from a
    fresh transient engine per step — the baseline every serving path
    must reproduce byte for byte.
    """
    rng = random.Random(seed)
    dtd = random_dtd(rng, n_labels=rng.randint(3, 5))
    annotation = random_annotation(rng, dtd)
    source = random_tree(dtd, rng, root_label="l0", size_hint=rng.randint(4, 14))
    stream = []
    current = source
    for _ in range(steps):
        update = random_view_update(rng, dtd, annotation, current, n_ops=3)
        cold = ViewEngine(dtd, annotation).propagate(current, update)
        stream.append((current, update, cold))
        current = cold.output_tree
    return dtd, annotation, source, stream


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 4))
def test_session_stream_matches_cold_baseline(seed, steps):
    """A DocumentSession serving N sequential updates returns exactly the
    cold per-step scripts, and its advanced caches exactly describe the
    evolved document."""
    dtd, annotation, source, stream = _workload(seed, steps)
    session = ViewEngine(dtd, annotation).session(source)
    for document, update, cold in stream:
        script = session.propagate(update)
        assert script.to_term() == cold.to_term()
        assert session.source == cold.output_tree
        assert session.view == annotation.view(session.source)
        assert session._sizes == dict(session.source.subtree_sizes())


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 3))
def test_registry_served_engines_match_cold_baseline(seed, steps):
    """Engines fetched from a registry — including repeat fetches that hit
    the LRU cache — propagate byte-identically to transient engines."""
    dtd, annotation, _, stream = _workload(seed, steps)
    registry = EngineRegistry(capacity=4)
    for document, update, cold in stream:
        engine = registry.get_or_compile(dtd, annotation)
        script = engine.propagate(document, update)
        assert script.to_term() == cold.to_term()
    stats = registry.stats
    assert stats.misses == 1
    assert stats.hits == len(stream) - 1


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(2, 4))
def test_parallel_propagate_many_matches_cold_baseline(seed, steps):
    """propagate_many(parallel=True) over a many-document batch preserves
    order and bytes relative to the cold per-request baseline."""
    dtd, annotation, _, stream = _workload(seed, steps)
    pairs = [(document, update) for document, update, _ in stream]
    engine = ViewEngine(dtd, annotation)
    parallel_scripts = engine.propagate_many(pairs, parallel=True)
    sequential_scripts = engine.propagate_many(pairs)
    for (_, _, cold), par, seq in zip(stream, parallel_scripts, sequential_scripts):
        assert par.to_term() == cold.to_term()
        assert seq.to_term() == cold.to_term()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 3))
def test_memoized_engine_matches_cold_baseline(seed, steps):
    """One long-lived engine serving every request *twice* — misses,
    hits, and re-misses after eviction — returns byte-identical scripts
    to the cold per-request baseline throughout."""
    dtd, annotation, _, stream = _workload(seed, steps)
    engine = ViewEngine(dtd, annotation)
    for document, update, cold in stream:
        first = engine.propagate(document, update)   # memo miss
        again = engine.propagate(document, update)   # memo hit
        assert first.to_term() == cold.to_term()
        assert again.to_term() == cold.to_term()
    stats = engine.stats
    # the stream may repeat a request across steps (an identity update),
    # so hits can exceed one per step — but every repeat must hit
    assert stats.memo_hits >= len(stream)
    assert stats.memo_hits + stats.memo_misses == 2 * len(stream)
    assert stats.memo_bypass == 0

    # a capacity-1 engine serves the same stream with evictions between
    # repeats: every re-served request is a fresh build, still identical
    tiny = ViewEngine(dtd, annotation, memo_capacity=1)
    for document, update, cold in stream:
        assert tiny.propagate(document, update).to_term() == cold.to_term()
    for document, update, cold in stream:
        assert tiny.propagate(document, update).to_term() == cold.to_term()
    distinct = {
        (document.content_key(), update.content_key())
        for document, update, _ in stream
    }
    if len(distinct) > 1:
        assert tiny.stats.memo_evictions > 0


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(2, 3))
def test_process_pool_matches_cold_baseline(seed, steps):
    """propagate_many(parallel="process") ships the batch through worker
    processes and returns scripts byte-identical to serial serving, in
    order."""
    dtd, annotation, _, stream = _workload(seed, steps)
    pairs = [(document, update) for document, update, _ in stream]
    engine = ViewEngine(dtd, annotation)
    pooled = engine.propagate_many(pairs, parallel="process", workers=2)
    for (_, _, cold), script in zip(stream, pooled):
        assert script.to_term() == cold.to_term()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1))
def test_free_function_matches_explicit_engine(seed):
    """The registry-backed free function and an explicitly compiled
    engine agree bytewise (the footgun fix must be invisible)."""
    from repro import propagate

    dtd, annotation, _, stream = _workload(seed, 1)
    document, update, cold = stream[0]
    free = propagate(dtd, annotation, document, update)
    assert free.to_term() == cold.to_term()
    # and a second call (a guaranteed registry hit) still agrees
    again = propagate(dtd, annotation, document, update)
    assert again.to_term() == cold.to_term()
