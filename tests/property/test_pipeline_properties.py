"""End-to-end property tests: the full propagation pipeline on random
instances (seeded through hypothesis so failures shrink to small seeds)."""

from hypothesis import given, settings
from hypothesis import strategies as st

import random

from repro.core import (
    count_min_propagations,
    propagate,
    propagation_graphs,
    verify_propagation,
)
from repro.dtd import view_dtd
from repro.generators import (
    random_annotation,
    random_dtd,
    random_tree,
    random_view_update,
)
from repro.inversion import inversion_graphs, invert, verify_inverse


def make_instance(seed: int):
    rng = random.Random(seed)
    dtd = random_dtd(rng, rng.randint(3, 6))
    annotation = random_annotation(rng, dtd, hide_probability=0.35)
    source = random_tree(dtd, rng, root_label="l0", size_hint=rng.randint(4, 24))
    update = random_view_update(rng, dtd, annotation, source, n_ops=rng.randint(1, 4))
    return dtd, annotation, source, update


class TestInversionPipeline:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_invert_view_round_trip(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, rng.randint(3, 6))
        annotation = random_annotation(rng, dtd, hide_probability=0.35)
        source = random_tree(dtd, rng, root_label="l0", size_hint=12)
        view = annotation.view(source)
        inverse = invert(dtd, annotation, view)
        assert verify_inverse(dtd, annotation, view, inverse)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_minimal_inverse_never_larger_than_source(self, seed):
        """The source itself is an inverse, so the minimum is ≤ |t|."""
        rng = random.Random(seed)
        dtd = random_dtd(rng, rng.randint(3, 5))
        annotation = random_annotation(rng, dtd, hide_probability=0.35)
        source = random_tree(dtd, rng, root_label="l0", size_hint=10)
        view = annotation.view(source)
        graphs = inversion_graphs(dtd, annotation, view)
        assert view.size <= graphs.min_inversion_size() <= source.size


class TestPropagationPipeline:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_propagation_validates(self, seed):
        dtd, annotation, source, update = make_instance(seed)
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_optimal_cost_bounds(self, seed):
        dtd, annotation, source, update = make_instance(seed)
        collection = propagation_graphs(dtd, annotation, source, update)
        script = propagate(dtd, annotation, source, update)
        assert script.cost == collection.min_cost()
        assert script.cost >= update.cost  # visible work is a lower bound

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_identity_update_propagates_to_identity(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, rng.randint(3, 5))
        annotation = random_annotation(rng, dtd, hide_probability=0.35)
        source = random_tree(dtd, rng, root_label="l0", size_hint=10)
        from repro.editing import EditScript

        identity = EditScript.phantom(annotation.view(source))
        script = propagate(dtd, annotation, source, identity)
        assert script.cost == 0
        assert script.output_tree == source

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_count_positive_and_enumeration_head_valid(self, seed):
        from repro.core import enumerate_min_propagations

        dtd, annotation, source, update = make_instance(seed)
        collection = propagation_graphs(dtd, annotation, source, update)
        assert count_min_propagations(collection) >= 1
        head = list(enumerate_min_propagations(collection, max_count=3))
        assert head
        for script in head:
            assert verify_propagation(dtd, annotation, source, update, script)
            assert script.cost == collection.min_cost()

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_output_view_dtd_valid(self, seed):
        dtd, annotation, source, update = make_instance(seed)
        script = propagate(dtd, annotation, source, update)
        vdtd = view_dtd(dtd, annotation)
        assert vdtd.validates(annotation.view(script.output_tree))
