"""Property-based tests for regexes and automata.

The independent oracle is a Brzozowski-derivative matcher implemented
here from scratch — no shared code with the Glushkov construction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    Concat,
    Epsilon,
    Optional as OptRegex,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
    determinize,
    glushkov,
    min_word,
    min_word_cost,
    minimize,
    nfa_to_regex,
    parse_regex,
)

from .strategies import regexes, words


# ---------------------------------------------------------------------------
# Independent oracle: Brzozowski derivatives
# ---------------------------------------------------------------------------


def nullable(expr: Regex) -> bool:
    if isinstance(expr, Epsilon):
        return True
    if isinstance(expr, Symbol):
        return False
    if isinstance(expr, Concat):
        return all(nullable(p) for p in expr.parts)
    if isinstance(expr, Union):
        return any(nullable(p) for p in expr.parts)
    if isinstance(expr, Star) or isinstance(expr, OptRegex):
        return True
    if isinstance(expr, Plus):
        return nullable(expr.inner)
    raise TypeError(expr)


EMPTY = ("EMPTY",)  # marker for the empty language


def derivative(expr: Regex, symbol: str):
    if isinstance(expr, Epsilon):
        return EMPTY
    if isinstance(expr, Symbol):
        return Epsilon() if expr.name == symbol else EMPTY
    if isinstance(expr, Union):
        branches = [derivative(p, symbol) for p in expr.parts]
        live = [b for b in branches if b is not EMPTY]
        if not live:
            return EMPTY
        return live[0] if len(live) == 1 else Union(tuple(live))
    if isinstance(expr, Concat):
        head, *tail = expr.parts
        rest = Concat(tuple(tail)) if len(tail) > 1 else tail[0]
        first = derivative(head, symbol)
        branches = []
        if first is not EMPTY:
            branches.append(
                rest if isinstance(first, Epsilon) else Concat((first, rest))
            )
        if nullable(head):
            second = derivative(rest, symbol)
            if second is not EMPTY:
                branches.append(second)
        if not branches:
            return EMPTY
        return branches[0] if len(branches) == 1 else Union(tuple(branches))
    if isinstance(expr, Star):
        inner = derivative(expr.inner, symbol)
        if inner is EMPTY:
            return EMPTY
        return expr if isinstance(inner, Epsilon) else Concat((inner, expr))
    if isinstance(expr, Plus):
        return derivative(Concat((expr.inner, Star(expr.inner))), symbol)
    if isinstance(expr, OptRegex):
        return derivative(expr.inner, symbol)
    raise TypeError(expr)


def brzozowski_matches(expr: Regex, word) -> bool:
    current = expr
    for symbol in word:
        current = derivative(current, symbol)
        if current is EMPTY:
            return False
    return nullable(current)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


class TestGlushkovAgainstDerivatives:
    @given(regexes(), words())
    @settings(max_examples=300)
    def test_membership_agrees(self, expr: Regex, word):
        nfa = glushkov(expr, alphabet=frozenset("abcd"))
        assert nfa.accepts(word) == brzozowski_matches(expr, word)

    @given(regexes())
    def test_epsilon_agreement(self, expr: Regex):
        assert glushkov(expr).accepts_epsilon() == expr.nullable() == nullable(expr)

    @given(regexes())
    @settings(max_examples=100)
    def test_accepted_samples_match_oracle(self, expr: Regex):
        nfa = glushkov(expr)
        for word in list(nfa.enumerate_words(4))[:20]:
            assert brzozowski_matches(expr, word)


class TestTransformations:
    @given(regexes(), words())
    @settings(max_examples=150)
    def test_determinize_preserves_language(self, expr: Regex, word):
        nfa = glushkov(expr, alphabet=frozenset("abcd"))
        assert determinize(nfa).accepts(word) == nfa.accepts(word)

    @given(regexes(), words())
    @settings(max_examples=100)
    def test_minimize_preserves_language(self, expr: Regex, word):
        nfa = glushkov(expr, alphabet=frozenset("abcd"))
        assert minimize(nfa).accepts(word) == nfa.accepts(word)

    @given(regexes())
    @settings(max_examples=60)
    def test_state_elimination_round_trip(self, expr: Regex):
        nfa = glushkov(expr)
        if not nfa.language_nonempty():
            return
        back = glushkov(nfa_to_regex(nfa), alphabet=nfa.alphabet)
        assert back.equivalent(nfa)

    @given(regexes())
    @settings(max_examples=100)
    def test_parser_round_trip(self, expr: Regex):
        assert parse_regex(expr.to_dtd()) == expr


class TestShortestWords:
    @given(regexes())
    @settings(max_examples=150)
    def test_min_word_is_accepted_and_minimal(self, expr: Regex):
        nfa = glushkov(expr)
        weights = {symbol: 1 for symbol in "abcd"}
        result = min_word(nfa, weights)
        if result is None:
            assert not nfa.language_nonempty()
            return
        cost, word = result
        assert nfa.accepts(word)
        assert cost == len(word)
        # no strictly shorter accepted word exists
        shorter = [w for w in nfa.enumerate_words(max(0, len(word) - 1))]
        assert shorter == [] or min(len(w) for w in shorter) >= len(word)

    @given(regexes(), st.dictionaries(st.sampled_from("abcd"), st.integers(1, 9)))
    @settings(max_examples=150)
    def test_weighted_cost_consistency(self, expr: Regex, partial_weights):
        weights = {s: partial_weights.get(s, 5) for s in "abcd"}
        nfa = glushkov(expr)
        result = min_word(nfa, weights)
        if result is None:
            return
        cost, word = result
        assert cost == sum(weights[s] for s in word)
        assert min_word_cost(nfa, weights) == cost
