"""Round-trip properties the durable store stands on.

The write-ahead log persists edit scripts as term text, snapshots
persist trees as XML, and schema files persist the ``(DTD, Annotation)``
pair — so ``parse ∘ render`` must be the identity on all three, for
*every* value the library can produce, or recovery reconstructs a
subtly different document.
"""

import random

from hypothesis import given, settings, strategies as st

import pytest

from repro.dtd import parse_dtd, serialize_dtd
from repro.editing import EditScript
from repro.editing.ops import EditLabel, Op, parse_edit_label
from repro.errors import InvalidScriptError
from repro.generators.dtds import random_annotation, random_dtd
from repro.registry import schema_fingerprint
from repro.store.wal import encode_record
from repro.views import Annotation
from repro.xmltree import tree_from_xml, tree_to_xml

from .strategies import trees

# Labels exercising the characters term notation can carry: plain,
# dotted, dashed, underscored, unicode, digit-leading.
SYMBOLS = ["a", "b2", "sec.meta", "x-y", "_u", "ä"]


@st.composite
def edit_scripts(draw, max_depth=3, max_children=3):
    """Random *well-formed* edit scripts (descendants of Ins are Ins,
    of Del are Del), including renames."""
    counter = [0]

    def build(depth, forced):
        node = f"n{counter[0]}"
        counter[0] += 1
        if forced is None:
            op = draw(st.sampled_from([Op.NOP, Op.INS, Op.DEL, Op.REN]))
        else:
            op = forced
        symbol = draw(st.sampled_from(SYMBOLS))
        if op is Op.REN:
            target = draw(st.sampled_from([s for s in SYMBOLS if s != symbol]))
            label = EditLabel(Op.REN, symbol.replace(".", "_"), target)
        else:
            label = EditLabel(op, symbol)
        n_children = 0 if depth >= max_depth else draw(st.integers(0, max_children))
        child_forced = op if op in (Op.INS, Op.DEL) else None
        children = [build(depth + 1, child_forced) for _ in range(n_children)]
        return EditScript.assemble(label, node, children)

    return build(0, None)


class TestScriptTermRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(script=edit_scripts())
    def test_parse_render_is_identity(self, script):
        """``EditScript.parse(script.to_term()) == script`` — identifiers,
        operations, and symbols all included (the WAL's contract)."""
        rendered = script.to_term()
        assert EditScript.parse(rendered) == script
        # and rendering is stable under the round trip
        assert EditScript.parse(rendered).to_term() == rendered

    @settings(max_examples=200, deadline=None)
    @given(script=edit_scripts(), seq=st.integers(1, 2**31))
    def test_wal_record_encoding_is_transparent(self, script, seq):
        """What goes through the WAL record framing comes back verbatim."""
        record = encode_record(seq, script.to_term())
        header, payload_and_newline = record.split(b"\n", 1)
        payload = payload_and_newline[:-1]
        assert payload.decode("utf-8") == script.to_term()
        assert EditScript.parse(payload.decode("utf-8")) == script

    def test_every_edit_label_round_trips(self):
        for symbol in SYMBOLS:
            for op in (Op.NOP, Op.INS, Op.DEL):
                label = EditLabel(op, symbol)
                assert parse_edit_label(label.encode()) == label
        label = EditLabel(Op.REN, "old", "new.with.dots")
        assert parse_edit_label(label.encode()) == label

    def test_ambiguous_rename_encoding_is_refused(self):
        """A rename of a dotted symbol cannot be written unambiguously in
        compact form — encode() must refuse instead of corrupting."""
        label = EditLabel(Op.REN, "a.b", "c")
        with pytest.raises(InvalidScriptError, match="dotted"):
            label.encode()


class TestTreeXmlRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(tree=trees())
    def test_xml_round_trip_is_identifier_exact(self, tree):
        rendered = tree_to_xml(tree, indent=False)
        assert tree_from_xml(rendered, require_ids=True) == tree

    def test_missing_ids_rejected_when_required(self):
        with pytest.raises(Exception, match="lacks"):
            tree_from_xml('<r id="n0"><a/></r>', require_ids=True)


class TestSchemaRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_dtd_and_annotation_fingerprints_survive_disk(self, seed):
        """serialize→parse preserves the canonical schema fingerprint —
        including alphabet symbols no rule references (the store refuses
        to open documents whose schema files drifted)."""
        rng = random.Random(seed)
        dtd = random_dtd(rng, n_labels=rng.randint(3, 6))
        annotation = random_annotation(rng, dtd)
        reread_dtd = parse_dtd(serialize_dtd(dtd))
        reread_ann = Annotation.parse(annotation.serialize())
        assert sorted(reread_dtd.alphabet) == sorted(dtd.alphabet)
        assert schema_fingerprint(reread_dtd, reread_ann) == schema_fingerprint(
            dtd, annotation
        )
