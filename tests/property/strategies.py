"""Hypothesis strategies for the library's core structures."""

from hypothesis import strategies as st

from repro.automata import (
    Epsilon,
    Optional as OptRegex,
    Plus,
    Regex,
    Star,
    Symbol,
    concat,
    union,
)
from repro.xmltree import Tree

LABELS = ["a", "b", "c", "d"]


@st.composite
def trees(draw, max_depth: int = 4, max_children: int = 4, labels=None) -> Tree:
    """Random ordered labelled trees with unique sequential identifiers."""
    labels = labels or LABELS
    counter = [0]

    def build(depth: int) -> Tree:
        node = f"t{counter[0]}"
        counter[0] += 1
        label = draw(st.sampled_from(labels))
        if depth >= max_depth:
            return Tree.leaf(label, node)
        n_children = draw(st.integers(0, max_children if depth < 2 else 2))
        children = [build(depth + 1) for _ in range(n_children)]
        return Tree.build(label, node, children)

    return build(0)


@st.composite
def regexes(draw, max_depth: int = 4, labels=None) -> Regex:
    """Random content-model regexes (never the empty language)."""
    labels = labels or LABELS

    def build(depth: int) -> Regex:
        if depth >= max_depth:
            return draw(st.sampled_from([Symbol(one) for one in labels] + [Epsilon()]))
        choice = draw(st.integers(0, 6))
        if choice == 0:
            return Epsilon()
        if choice <= 2:
            return Symbol(draw(st.sampled_from(labels)))
        if choice == 3:
            parts = [build(depth + 1) for _ in range(draw(st.integers(2, 3)))]
            return concat(*parts)  # normal form, as the parser produces
        if choice == 4:
            return union(build(depth + 1), build(depth + 1))
        if choice == 5:
            return Star(build(depth + 1))
        return draw(st.sampled_from([Plus, OptRegex]))(build(depth + 1))

    return build(0)


@st.composite
def words(draw, max_length: int = 6, labels=None) -> tuple:
    labels = labels or LABELS
    length = draw(st.integers(0, max_length))
    return tuple(draw(st.sampled_from(labels)) for _ in range(length))
