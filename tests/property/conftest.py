"""Mark every test under ``tests/property`` with the ``property`` marker,
so CI can select the whole property-based suite with ``-m property``."""

import pathlib

import pytest

_HERE = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        path = getattr(item, "path", None) or getattr(item, "fspath", None)
        if path is not None and _HERE in pathlib.Path(str(path)).parents:
            item.add_marker(pytest.mark.property)
