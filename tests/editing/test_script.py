"""Tests for editing scripts: well-formedness, In/Out, cost (Figures 4-5)."""

import pytest

from repro.editing import EditLabel, EditScript, Op, dele, ins, nop
from repro.errors import InvalidScriptError
from repro.xmltree import Tree, parse_term

S0_TERM = (
    "Nop.r#n0("
    "Del.a#n1, Del.d#n3(Del.c#n8), Nop.a#n4, "
    "Ins.d#n11(Ins.c#n13, Ins.c#n14), Ins.a#n12, "
    "Nop.d#n6(Nop.c#n10, Ins.c#n15))"
)


@pytest.fixture
def s0() -> EditScript:
    """The paper's Figure 4 view update S0."""
    return EditScript.parse(S0_TERM)


class TestOps:
    def test_edit_label_str(self):
        assert str(ins("a")) == "Ins(a)"
        assert str(dele("d")) == "Del(d)"
        assert str(nop("r")) == "Nop(r)"

    def test_parse_edit_label_forms(self):
        from repro.editing import parse_edit_label

        assert parse_edit_label("Ins(a)") == ins("a")
        assert parse_edit_label("Del.d") == dele("d")
        with pytest.raises(InvalidScriptError):
            parse_edit_label("Zap(a)")

    def test_predicates(self):
        assert ins("a").is_insert
        assert dele("a").is_delete
        assert nop("a").is_phantom


class TestWellFormedness:
    def test_ins_must_have_ins_descendants(self):
        with pytest.raises(InvalidScriptError):
            EditScript.parse("Ins.r(Nop.a)")
        with pytest.raises(InvalidScriptError):
            EditScript.parse("Ins.r(Del.a)")

    def test_del_must_have_del_descendants(self):
        with pytest.raises(InvalidScriptError):
            EditScript.parse("Del.r(Ins.a)")
        with pytest.raises(InvalidScriptError):
            EditScript.parse("Del.r(Nop.a)")

    def test_nop_may_mix_children(self, s0: EditScript):
        assert s0.op("n0") is Op.NOP  # has Del, Nop, Ins children

    def test_non_edit_labels_rejected(self):
        with pytest.raises(InvalidScriptError):
            EditScript(parse_term("r(a)"))


class TestInputOutput:
    def test_figure4_input_is_view(self, s0: EditScript):
        expected = parse_term("r#n0(a#n1, d#n3(c#n8), a#n4, d#n6(c#n10))")
        assert s0.input_tree == expected

    def test_figure5_output(self, s0: EditScript):
        expected = parse_term(
            "r#n0(a#n4, d#n11(c#n13, c#n14), a#n12, d#n6(c#n10, c#n15))"
        )
        assert s0.output_tree == expected

    def test_insertion_script(self):
        tree = parse_term("d#x(c#y)")
        script = EditScript.insertion(tree)
        assert script.input_tree.is_empty
        assert script.output_tree == tree
        assert script.cost == 2

    def test_deletion_script(self):
        tree = parse_term("d#x(c#y)")
        script = EditScript.deletion(tree)
        assert script.input_tree == tree
        assert script.output_tree.is_empty
        assert script.cost == 2

    def test_phantom_script(self):
        tree = parse_term("d#x(c#y)")
        script = EditScript.phantom(tree)
        assert script.input_tree == tree
        assert script.output_tree == tree
        assert script.cost == 0
        assert script.is_identity()

    def test_apply_to(self, s0: EditScript):
        view = s0.input_tree
        assert s0.apply_to(view) == s0.output_tree
        with pytest.raises(InvalidScriptError):
            s0.apply_to(parse_term("r"))


class TestCost:
    def test_figure4_cost(self, s0: EditScript):
        # S0 deletes 3 nodes (n1, n3, n8) and inserts 5 (n11-n15)
        assert s0.cost == 8

    def test_cost_counts_non_phantom(self):
        script = EditScript.parse("Nop.r(Del.a, Ins.b)")
        assert script.cost == 2


class TestStructure:
    def test_nop_nodes_document_order(self, s0: EditScript):
        assert list(s0.nop_nodes()) == ["n0", "n4", "n6", "n10"]

    def test_subscript(self, s0: EditScript):
        fragment = s0.subscript("n6")
        assert fragment.root == "n6"
        assert fragment.op("n15") is Op.INS
        assert fragment.input_tree == parse_term("d#n6(c#n10)")

    def test_symbol_accessor(self, s0: EditScript):
        assert s0.symbol("n11") == "d"
        assert s0.edit_label("n11") == EditLabel(Op.INS, "d")

    def test_assemble(self):
        fragment = EditScript.assemble(
            nop("d"), "n6",
            [EditScript.phantom(Tree.leaf("c", "n10")),
             EditScript.insertion(Tree.leaf("c", "n15"))],
        )
        assert fragment.children("n6") == ("n10", "n15")
        assert fragment.cost == 1


class TestRendering:
    def test_term_round_trip(self, s0: EditScript):
        assert EditScript.parse(s0.to_term()) == s0

    def test_pretty_uses_paper_notation(self, s0: EditScript):
        text = s0.pretty()
        assert "Nop(r)#n0" in text
        assert "Ins(d)#n11" in text

    def test_shape_ignores_ids(self, s0: EditScript):
        other = EditScript(s0.tree.with_fresh_ids())
        assert other.shape() == s0.shape()
        assert other != s0

    def test_empty_script(self):
        script = EditScript(Tree.empty())
        assert script.is_empty
        assert script.input_tree.is_empty
        assert script.output_tree.is_empty
        assert repr(script) == "EditScript(empty)"
