"""Tests for UpdateBuilder — composing view updates."""

import pytest

from repro.editing import EditScript, Op, UpdateBuilder
from repro.errors import InvalidScriptError, NodeNotFoundError
from repro.xmltree import Tree, parse_term


@pytest.fixture
def view() -> Tree:
    """The paper's view A0(t0)."""
    return parse_term("r#n0(a#n1, d#n3(c#n8), a#n4, d#n6(c#n10))")


class TestBasics:
    def test_no_ops_identity_script(self, view: Tree):
        script = UpdateBuilder(view).script()
        assert script.is_identity()
        assert script.input_tree == view
        assert script.output_tree == view

    def test_empty_view_rejected(self):
        with pytest.raises(InvalidScriptError):
            UpdateBuilder(Tree.empty())

    def test_unknown_node(self, view: Tree):
        with pytest.raises(NodeNotFoundError):
            UpdateBuilder(view).delete("ghost")


class TestDelete:
    def test_delete_marks_subtree(self, view: Tree):
        builder = UpdateBuilder(view).delete("n3")
        script = builder.script()
        assert script.op("n3") is Op.DEL
        assert script.op("n8") is Op.DEL
        assert script.output_tree == parse_term("r#n0(a#n1, a#n4, d#n6(c#n10))")

    def test_delete_root_rejected(self, view: Tree):
        with pytest.raises(InvalidScriptError):
            UpdateBuilder(view).delete("n0")

    def test_double_delete_rejected(self, view: Tree):
        builder = UpdateBuilder(view).delete("n3")
        with pytest.raises(InvalidScriptError):
            builder.delete("n3")
        with pytest.raises(InvalidScriptError):
            builder.delete("n8")  # inside the deleted subtree

    def test_delete_inserted_cancels(self, view: Tree):
        builder = UpdateBuilder(view)
        builder.insert("n6", parse_term("c#u0"))
        builder.delete("u0")
        script = builder.script()
        assert "u0" not in script.node_set
        assert script.is_identity()

    def test_delete_original_with_insertions_inside(self, view: Tree):
        builder = UpdateBuilder(view)
        builder.insert("n3", parse_term("c#u0"))
        builder.delete("n3")
        script = builder.script()
        assert "u0" not in script.node_set
        assert script.op("n3") is Op.DEL
        assert script.op("n8") is Op.DEL


class TestInsert:
    def test_insert_at_end_default(self, view: Tree):
        builder = UpdateBuilder(view).insert("n6", parse_term("c#u0"))
        script = builder.script()
        assert script.children("n6") == ("n10", "u0")
        assert script.op("u0") is Op.INS

    def test_insert_at_position(self, view: Tree):
        builder = UpdateBuilder(view).insert("n0", parse_term("a#u0"), index=1)
        assert builder.current_output().children("n0") == (
            "n1", "u0", "n3", "n4", "n6",
        )

    def test_insert_whole_subtree(self, view: Tree):
        builder = UpdateBuilder(view).insert("n0", parse_term("d#u0(c#u1, c#u2)"))
        script = builder.script()
        assert script.op("u1") is Op.INS
        assert script.children("u0") == ("u1", "u2")

    def test_insert_position_counts_output_children(self, view: Tree):
        builder = UpdateBuilder(view).delete("n1")
        # output children of n0 are now n3, n4, n6; index 1 = before n4
        builder.insert("n0", parse_term("a#u0"), index=1)
        assert builder.current_output().children("n0") == ("n3", "u0", "n4", "n6")

    def test_insert_under_deleted_rejected(self, view: Tree):
        builder = UpdateBuilder(view).delete("n3")
        with pytest.raises(InvalidScriptError):
            builder.insert("n3", parse_term("c#u0"))

    def test_insert_out_of_range(self, view: Tree):
        with pytest.raises(InvalidScriptError):
            UpdateBuilder(view).insert("n6", parse_term("c#u0"), index=5)

    def test_insert_reused_id_rejected(self, view: Tree):
        with pytest.raises(InvalidScriptError):
            UpdateBuilder(view).insert("n6", parse_term("c#n10"))

    def test_insert_forbidden_hidden_id_rejected(self, view: Tree):
        builder = UpdateBuilder(view, forbidden_ids={"n2"})
        with pytest.raises(InvalidScriptError):
            builder.insert("n6", parse_term("c#n2"))

    def test_insert_inside_inserted(self, view: Tree):
        builder = UpdateBuilder(view).insert("n6", parse_term("c#u0"))
        # c has no children in the paper DTD, but the builder is schema-agnostic
        builder.insert("u0", parse_term("b#u1"))
        assert builder.script().op("u1") is Op.INS

    def test_empty_insert_is_noop(self, view: Tree):
        builder = UpdateBuilder(view).insert("n6", Tree.empty())
        assert builder.script().is_identity()


class TestAnchoredInsert:
    def test_insert_after_deleted_anchor(self, view: Tree):
        builder = UpdateBuilder(view).delete("n1")
        builder.insert_after("n1", parse_term("a#u0"))
        script = builder.script()
        assert script.children("n0") == ("n1", "u0", "n3", "n4", "n6")

    def test_insert_before(self, view: Tree):
        builder = UpdateBuilder(view).insert_before("n4", parse_term("d#u0"))
        assert builder.script().children("n0") == ("n1", "n3", "u0", "n4", "n6")

    def test_root_anchor_rejected(self, view: Tree):
        with pytest.raises(InvalidScriptError):
            UpdateBuilder(view).insert_after("n0", parse_term("a#u0"))

    def test_interleaving_differs_from_insert(self, view: Tree):
        """insert() attaches to the visible predecessor, before deleted nodes."""
        left = UpdateBuilder(view).delete("n3")
        left.insert("n0", parse_term("d#u0"), index=1)  # right after n1
        right = UpdateBuilder(view).delete("n3")
        right.insert_after("n3", parse_term("d#u0"))  # after the deleted n3
        assert left.script().children("n0") == ("n1", "u0", "n3", "n4", "n6")
        assert right.script().children("n0") == ("n1", "n3", "u0", "n4", "n6")
        # same output, different scripts
        assert left.script().output_tree == right.script().output_tree
        assert left.script() != right.script()


class TestReplace:
    def test_replace_original(self, view: Tree):
        builder = UpdateBuilder(view).replace("n3", parse_term("d#u0(c#u1)"))
        script = builder.script()
        assert script.op("n3") is Op.DEL
        assert script.op("u0") is Op.INS
        assert script.output_tree.children("n0") == ("n1", "u0", "n4", "n6")

    def test_replace_inserted(self, view: Tree):
        builder = UpdateBuilder(view).insert("n6", parse_term("c#u0"))
        builder.replace("u0", parse_term("c#u1"))
        script = builder.script()
        assert "u0" not in script.node_set
        assert script.op("u1") is Op.INS

    def test_replace_root_rejected(self, view: Tree):
        with pytest.raises(InvalidScriptError):
            UpdateBuilder(view).replace("n0", parse_term("r#u0"))


class TestReproducesPaperS0:
    def test_figure4_script(self, view: Tree):
        """Rebuild S0 exactly with builder operations."""
        builder = UpdateBuilder(view)
        builder.delete("n1")
        builder.delete("n3")
        builder.insert_after("n4", parse_term("d#n11(c#n13, c#n14)"))
        builder.insert_after("n11", parse_term("a#n12"))
        builder.insert("n6", parse_term("c#n15"))
        expected = EditScript.parse(
            "Nop.r#n0("
            "Del.a#n1, Del.d#n3(Del.c#n8), Nop.a#n4, "
            "Ins.d#n11(Ins.c#n13, Ins.c#n14), Ins.a#n12, "
            "Nop.d#n6(Nop.c#n10, Ins.c#n15))"
        )
        assert builder.script() == expected

    def test_current_output_matches_figure5(self, view: Tree):
        builder = UpdateBuilder(view)
        builder.delete("n1")
        builder.delete("n3")
        builder.insert_after("n4", parse_term("d#n11(c#n13, c#n14)"))
        builder.insert_after("n11", parse_term("a#n12"))
        builder.insert("n6", parse_term("c#n15"))
        assert builder.current_output() == parse_term(
            "r#n0(a#n4, d#n11(c#n13, c#n14), a#n12, d#n6(c#n10, c#n15))"
        )
