"""EngineRegistry: schema hashing, LRU policy, stats, thread safety, and
the default-registry routing of the free functions."""

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import (
    DTD,
    Annotation,
    EngineRegistry,
    InsertletPackage,
    MinimalTreeFactory,
    ViewEngine,
    default_registry,
    invert,
    propagate,
    schema_fingerprint,
    set_default_registry,
)
from repro.generators.workloads import running_example
from repro.xmltree import parse_term


def _schema(extra: str = ""):
    dtd = DTD({"r": f"(a,(b|c),d)*{extra}", "d": "((a|b),c)*"})
    annotation = Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))
    return dtd, annotation


def _distinct_schemas(count: int):
    """*count* schemas with pairwise distinct fingerprints."""
    schemas = []
    for index in range(count):
        rules = {"r": "a*" + ",b?" * index}
        schemas.append((DTD(rules, alphabet=["a", "b"]), Annotation.identity()))
    return schemas


class TestSchemaFingerprint:
    def test_rule_order_irrelevant(self):
        forward = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
        backward = DTD({"d": "((a|b),c)*", "r": "(a,(b|c),d)*"})
        annotation = Annotation.hiding(("r", "b"))
        assert schema_fingerprint(forward, annotation) == schema_fingerprint(
            backward, annotation
        )

    def test_alphabet_listing_order_irrelevant(self):
        one = DTD({"r": "a?"}, alphabet=["x", "y"])
        two = DTD({"r": "a?"}, alphabet=["y", "x"])
        assert schema_fingerprint(one, Annotation.identity()) == schema_fingerprint(
            two, Annotation.identity()
        )

    def test_annotation_entry_order_and_redundancy_irrelevant(self):
        dtd, _ = _schema()
        base = Annotation.hiding(("r", "b"), ("r", "c"))
        reordered = Annotation.hiding(("r", "c"), ("r", "b"))
        # restating the default and naming symbols outside the alphabet
        # cannot change the view of any tree in L(D)
        redundant = Annotation(
            {("r", "b"): 0, ("r", "c"): 0, ("r", "a"): 1, ("zz", "b"): 0}
        )
        assert schema_fingerprint(dtd, base) == schema_fingerprint(dtd, reordered)
        assert schema_fingerprint(dtd, base) == schema_fingerprint(dtd, redundant)

    def test_different_rules_differ(self):
        dtd_one, annotation = _schema()
        dtd_two = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)?"})
        assert schema_fingerprint(dtd_one, annotation) != schema_fingerprint(
            dtd_two, annotation
        )

    def test_different_annotations_differ(self):
        dtd, annotation = _schema()
        other = Annotation.hiding(("r", "b"))
        assert schema_fingerprint(dtd, annotation) != schema_fingerprint(dtd, other)

    def test_default_visibility_distinguished(self):
        dtd, _ = _schema()
        assert schema_fingerprint(dtd, Annotation(default=1)) != schema_fingerprint(
            dtd, Annotation(default=0)
        )

    def test_engine_schema_hash_matches_and_is_stable(self):
        dtd, annotation = _schema()
        engine = ViewEngine(dtd, annotation)
        assert engine.schema_hash == schema_fingerprint(dtd, annotation)
        assert engine.schema_hash is engine.schema_hash  # memoized

    def test_random_dtds_rule_order_stable(self):
        rng = random.Random(5)
        from repro.generators.dtds import random_annotation, random_dtd

        for _ in range(10):
            dtd = random_dtd(rng, n_labels=5)
            annotation = random_annotation(rng, dtd)
            rebuilt = DTD(
                dict(reversed([(s, dtd.rule_regex(s)) for s, _ in dtd.rules()
                               if dtd.has_explicit_rule(s)])),
                alphabet=sorted(dtd.alphabet, reverse=True),
            )
            assert schema_fingerprint(dtd, annotation) == schema_fingerprint(
                rebuilt, annotation
            )


class TestRegistryCache:
    def test_hit_returns_same_instance(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        first = registry.get_or_compile(dtd, annotation)
        second = registry.get_or_compile(dtd, annotation)
        assert first is second
        stats = registry.stats
        assert (stats.hits, stats.misses, stats.currsize) == (1, 1, 1)

    def test_equal_schemas_built_differently_share_an_engine(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        clone = DTD({"d": "((a|b),c)*", "r": "(a,(b|c),d)*"})
        assert registry.get_or_compile(dtd, annotation) is registry.get_or_compile(
            clone, annotation
        )

    def test_lru_eviction_order(self):
        registry = EngineRegistry(capacity=2)
        (d1, a1), (d2, a2), (d3, a3) = _distinct_schemas(3)
        e1 = registry.get_or_compile(d1, a1)
        registry.get_or_compile(d2, a2)
        # touch the first so the second becomes least-recently used
        assert registry.get_or_compile(d1, a1) is e1
        registry.get_or_compile(d3, a3)
        assert len(registry) == 2
        assert registry.stats.evictions == 1
        # the first survived the eviction, the second did not
        assert registry.get_or_compile(d1, a1) is e1
        misses_before = registry.stats.misses
        registry.get_or_compile(d2, a2)
        assert registry.stats.misses == misses_before + 1

    def test_stats_counters_and_hit_rate(self):
        registry = EngineRegistry(capacity=8)
        dtd, annotation = _schema()
        for _ in range(4):
            registry.get_or_compile(dtd, annotation)
        stats = registry.stats
        assert (stats.hits, stats.misses, stats.evictions) == (3, 1, 0)
        assert stats.hit_rate == pytest.approx(0.75)

    def test_clear_resets(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        registry.get_or_compile(dtd, annotation)
        registry.clear()
        assert len(registry) == 0
        assert registry.stats.misses == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EngineRegistry(capacity=0)

    def test_warm_engine_precompiled(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        engine = registry.get_or_compile(dtd, annotation, warm=True)
        assert "view_dtd" in repr(engine)


class TestFactoryKeys:
    def test_minimal_factory_shares_default_engine(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        default = registry.get_or_compile(dtd, annotation)
        explicit = registry.get_or_compile(
            dtd, annotation, factory=MinimalTreeFactory(dtd)
        )
        assert default is explicit

    def test_isomorphic_insertlet_packages_share(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        one = InsertletPackage.from_terms(dtd, {"d": "d(a, c)"}, strict=False)
        two = InsertletPackage.from_terms(dtd, {"d": "d(a, c)"}, strict=False)
        assert registry.get_or_compile(
            dtd, annotation, factory=one
        ) is registry.get_or_compile(dtd, annotation, factory=two)

    def test_different_insertlet_packages_do_not_share(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        one = InsertletPackage.from_terms(dtd, {"d": "d(a, c)"}, strict=False)
        two = InsertletPackage.from_terms(dtd, {"d": "d(b, c)"}, strict=False)
        assert registry.get_or_compile(
            dtd, annotation, factory=one
        ) is not registry.get_or_compile(dtd, annotation, factory=two)

    def test_unknown_factory_served_transient(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()

        class OpaqueFactory:
            def __init__(self):
                self._inner = MinimalTreeFactory(dtd)

            def weight(self, label):
                return self._inner.weight(label)

            def build(self, label, fresh):
                return self._inner.build(label, fresh)

        first = registry.get_or_compile(dtd, annotation, factory=OpaqueFactory())
        second = registry.get_or_compile(dtd, annotation, factory=OpaqueFactory())
        assert first is not second
        stats = registry.stats
        assert stats.uncacheable == 2
        assert stats.currsize == 0


class TestThreadSafety:
    def test_concurrent_get_or_compile_single_compile(self):
        registry = EngineRegistry()
        dtd, annotation = _schema()
        with ThreadPoolExecutor(max_workers=8) as pool:
            engines = list(
                pool.map(
                    lambda _: registry.get_or_compile(dtd, annotation), range(32)
                )
            )
        assert all(engine is engines[0] for engine in engines)
        stats = registry.stats
        assert stats.misses == 1
        assert stats.hits == 31

    def test_concurrent_mixed_schemas_consistent(self):
        registry = EngineRegistry(capacity=16)
        schemas = _distinct_schemas(4)

        def fetch(index):
            dtd, annotation = schemas[index % len(schemas)]
            return index % len(schemas), registry.get_or_compile(dtd, annotation)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(fetch, range(64)))
        by_schema = {}
        for index, engine in results:
            by_schema.setdefault(index, set()).add(id(engine))
        assert all(len(ids) == 1 for ids in by_schema.values())
        assert registry.stats.misses == len(schemas)


class TestSingleFlight:
    """Concurrent misses on one key coalesce into one build: N threads
    racing on a cold schema compile it once, not N times."""

    def test_racing_threads_share_one_slow_build(self, monkeypatch):
        import threading

        registry = EngineRegistry()
        dtd, annotation = _schema()
        builds = []
        release = threading.Event()
        entered = threading.Barrier(9)  # 8 racers + the main thread
        original = EngineRegistry._build_engine

        def slow_build(self, *args, **kwargs):
            builds.append(threading.get_ident())
            # hold the build until every racer has been released into
            # get_or_compile — the single-flight window is guaranteed
            # open, so the assertion below is deterministic-ish
            release.wait(timeout=10)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(EngineRegistry, "_build_engine", slow_build)
        results = [None] * 8
        errors = []

        def fetch(index):
            try:
                entered.wait(timeout=10)
                results[index] = registry.get_or_compile(dtd, annotation)
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=fetch, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        entered.wait(timeout=10)
        # give the racers a moment to pile onto the in-flight build,
        # then let the leader finish
        import time

        deadline = time.monotonic() + 5
        while not builds and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(builds) == 1  # exactly one compile, 7 racers coalesced
        assert all(engine is results[0] for engine in results)
        stats = registry.stats
        assert stats.misses == 1
        assert stats.hits == 7
        assert stats.coalesced >= 1

    def test_failed_build_propagates_to_every_racer(self, monkeypatch):
        import threading

        registry = EngineRegistry()
        dtd, annotation = _schema()

        class Boom(RuntimeError):
            pass

        def failing_build(self, *args, **kwargs):
            raise Boom("compile failed")

        monkeypatch.setattr(EngineRegistry, "_build_engine", failing_build)
        errors = []

        def fetch():
            try:
                registry.get_or_compile(dtd, annotation)
            except Boom as error:
                errors.append(error)

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(errors) == 4  # everyone saw the failure, nobody hung
        assert len(registry) == 0  # nothing poisonous was cached
        # and the failure is not sticky: a working build succeeds after
        monkeypatch.undo()
        assert registry.get_or_compile(dtd, annotation) is not None


class TestDefaultRegistryRouting:
    """The free-wrapper footgun fix: repeat calls stop recompiling."""

    @pytest.fixture
    def fresh_default(self):
        replacement = EngineRegistry(capacity=16)
        previous = set_default_registry(replacement)
        try:
            yield replacement
        finally:
            set_default_registry(previous)

    def test_propagate_second_call_hits_cache(self, fresh_default):
        workload = running_example(2)
        first = propagate(
            workload.dtd, workload.annotation, workload.source, workload.update
        )
        assert fresh_default.stats.misses == 1
        second = propagate(
            workload.dtd, workload.annotation, workload.source, workload.update
        )
        assert fresh_default.stats.hits == 1
        assert first.to_term() == second.to_term()

    def test_invert_routes_through_default_registry(self, fresh_default):
        dtd, annotation = _schema()
        view = parse_term("r#v0(a#v1, d#v2)")
        one = invert(dtd, annotation, view)
        two = invert(dtd, annotation, view)
        assert one == two
        stats = fresh_default.stats
        assert (stats.hits, stats.misses) == (1, 1)

    def test_propagate_and_invert_share_one_engine(self, fresh_default):
        dtd, annotation = _schema()
        view = parse_term("r#v0(a#v1, d#v2)")
        invert(dtd, annotation, view)
        workload_source = invert(dtd, annotation, view)
        assert workload_source is not None
        assert fresh_default.stats.currsize == 1

    def test_set_default_registry_rejects_non_registry(self):
        with pytest.raises(TypeError):
            set_default_registry(object())

    def test_default_registry_is_a_registry(self):
        assert isinstance(default_registry(), EngineRegistry)
