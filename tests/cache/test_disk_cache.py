"""The persistent compiled-artifact and memo cache tier.

These tests pin the tier's contract end to end: raw put/get mechanics,
restart warm-starts (a fresh process's first propagation skips both
compilation and graph construction), cross-instance sharing, size-aware
LRU eviction under global and per-tenant quotas, invalidation
mirroring, segment garbage collection, torn-tail (kill-mid-put) repair,
the warm-up manifest, and the stats/metrics surfaces. Throughout, the
tier must be invisible in *results* — every produced script is
byte-identical to the cache-free baseline — and visible only in time
and counters.
"""

import json

import pytest

from repro import Annotation, DTD, EngineRegistry, ViewEngine
from repro.cache import DiskCache, build_artifact_payload, hydrate_engine
from repro.editing import EditScript
from repro.paperdata.figures import a0, d0
from repro.server.metrics import render_metrics
from repro.xmltree import parse_term

pytestmark = pytest.mark.cache

SOURCE_TERM = "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
UPDATE_TERM = (
    "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
    "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))"
)


@pytest.fixture
def schema():
    return d0(), a0()


@pytest.fixture
def source():
    return parse_term(SOURCE_TERM)


@pytest.fixture
def update():
    return EditScript.parse(UPDATE_TERM)


def _stack(root):
    """A fresh (disk tier, registry) pair over *root* — simulates one
    process booting against a shared cache directory."""
    disk = DiskCache(root)
    registry = EngineRegistry()
    registry.attach_disk_tier(disk)
    return disk, registry


def _baseline_script(schema, source, update):
    """The cache-free answer every cached serve must reproduce."""
    return ViewEngine(*schema).propagate(source, update)


class TestRawStore:
    def test_artifact_roundtrip(self, tmp_path):
        disk = DiskCache(tmp_path)
        payload = {"version": 1, "anything": ["json", 42]}
        assert disk.put_artifact("h1", "minimal", payload)
        assert disk.get_artifact("h1", "minimal") == payload
        assert disk.get_artifact("h1", "other") is None
        assert disk.get_artifact("h2", "minimal") is None
        stats = disk.stats
        assert (stats.puts, stats.artifact_hits, stats.misses) == (1, 1, 2)

    def test_memo_roundtrip(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert disk.put_memo(
            "h1", "minimal", "src", "upd", "chooser|1", "Nop.r#n0", validated=True
        )
        hit = disk.get_memo("h1", "minimal", "src", "upd", "chooser|1")
        assert hit == {"script": "Nop.r#n0", "validated": True}
        assert disk.get_memo("h1", "minimal", "src", "upd", "chooser|0") is None
        assert disk.stats.memo_hits == 1

    def test_unserializable_payload_rejected(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert not disk.put_artifact("h1", "minimal", {"bad": object()})
        assert disk.stats.put_rejects == 1
        assert len(disk) == 0

    def test_cross_instance_visibility(self, tmp_path):
        """A put in one process is a hit in another (tail re-scan on
        miss) — the pool-sharing contract."""
        writer = DiskCache(tmp_path)
        reader = DiskCache(tmp_path)  # opened before the put
        assert reader.get_artifact("h1", "minimal") is None
        writer.put_artifact("h1", "minimal", {"v": 1})
        assert reader.get_artifact("h1", "minimal") == {"v": 1}

    def test_reopen_reads_everything_back(self, tmp_path):
        disk = DiskCache(tmp_path)
        for index in range(10):
            disk.put_memo(
                "h1", "minimal", f"s{index}", "u", "c|1", f"Nop.r#n{index}",
                validated=False,
            )
        reopened = DiskCache(tmp_path)
        assert len(reopened) == 10
        for index in range(10):
            payload = reopened.get_memo("h1", "minimal", f"s{index}", "u", "c|1")
            assert payload["script"] == f"Nop.r#n{index}"


class TestRestartWarmStart:
    """The tentpole acceptance: with a populated tier, a fresh process's
    first propagation of a known request skips compilation *and* graph
    construction, and the script is byte-identical."""

    def test_artifact_hydration_skips_compile(self, tmp_path, schema, source, update):
        baseline = _baseline_script(schema, source, update)
        _, first_registry = _stack(tmp_path)
        engine = first_registry.get_or_compile(*schema)
        engine.propagate(source, update)  # persists artifact + memo

        disk, registry = _stack(tmp_path)
        warmed = registry.get_or_compile(*schema)
        # Building the engine reads nothing: the artifact arrives as a
        # lazy supplier, consumed on first compiled-table access.
        assert warmed._artifact_supplier is not None
        assert disk.stats.artifact_hits == 0
        assert warmed.schema_hash == engine.schema_hash
        # First table touch installs the whole precompiled bundle —
        # minimal sizes ride along although only visibility was asked.
        assert warmed.visible_table == engine.visible_table
        assert disk.stats.artifact_hits == 1
        assert warmed._sizes is not None
        assert warmed._view_supplier is not None  # automata still deferred
        assert warmed.view_dtd is not None
        script = warmed.propagate(source, update)
        assert script.to_term() == baseline.to_term()
        assert script == baseline

    def test_disk_memo_hit_skips_graph_construction(
        self, tmp_path, schema, source, update
    ):
        baseline = _baseline_script(schema, source, update)
        _, first_registry = _stack(tmp_path)
        first_registry.get_or_compile(*schema).propagate(source, update)

        disk, registry = _stack(tmp_path)
        engine = registry.get_or_compile(*schema)
        script = engine.propagate(source, update)
        stats = engine.stats
        assert stats.memo_hits == 1
        assert stats.disk_memo_hits == 1
        assert stats.memo_misses == 0
        entry = engine._memo.get((source.content_key(), update.content_key()))
        assert entry is not None and entry.graphs is None  # never built
        assert disk.stats.artifact_hits == 0  # never even read the artifact
        assert script.to_term() == baseline.to_term()

    def test_session_serving_persists_artifact(
        self, tmp_path, schema, source, update
    ):
        """Sessions bypass the engine memo (their caches advance with the
        document), but a served workload must still seed the artifact
        tier so a restarted process skips compilation."""
        disk, registry = _stack(tmp_path)
        engine = registry.get_or_compile(*schema)
        engine.session(source).propagate(update)
        assert disk.stats.puts >= 1

        fresh_disk, fresh_registry = _stack(tmp_path)
        warmed = fresh_registry.get_or_compile(*schema)
        assert warmed._artifact_supplier is not None  # disk-backed, no compile
        assert warmed.visible_table == engine.visible_table
        assert fresh_disk.stats.artifact_hits == 1

    def test_validated_flag_rides_along(self, tmp_path, schema, source, update):
        _, first_registry = _stack(tmp_path)
        first_registry.get_or_compile(*schema).propagate(source, update)

        _, registry = _stack(tmp_path)
        engine = registry.get_or_compile(*schema)
        engine.propagate(source, update)
        # the first serve validated; the disk entry carries the flag, so
        # the warm process never re-validates this pair
        assert engine.stats.validations == 0

    def test_damaged_tier_still_serves(self, tmp_path, schema, source, update):
        """A tier whose files vanish mid-flight degrades to compile —
        never an exception, never a wrong script."""
        baseline = _baseline_script(schema, source, update)
        disk, registry = _stack(tmp_path)
        for path in disk.root.glob("seg-*.log"):
            path.write_bytes(b"\x00garbage\x00")
        engine = registry.get_or_compile(*schema)
        script = engine.propagate(source, update)
        assert script.to_term() == baseline.to_term()


class TestEvictionAndQuotas:
    def _memo_put(self, disk, tenant, index, pad=2048):
        return disk.put_memo(
            tenant,
            "minimal",
            f"s{index}",
            "u" * pad,  # bulk the record up so quotas bite quickly
            "c|1",
            f"Nop.r#n{index}",
            validated=False,
        )

    def test_global_quota_evicts_lru(self, tmp_path):
        disk = DiskCache(tmp_path, quota_bytes=16_000, tenant_quota_bytes=16_000)
        for index in range(12):
            assert self._memo_put(disk, "h1", index)
        stats = disk.stats
        assert stats.evictions > 0
        assert stats.bytes <= 16_000
        # the most recent put always survives; the oldest is gone
        assert disk.get_memo("h1", "minimal", "s11", "u" * 2048, "c|1") is not None
        assert disk.get_memo("h1", "minimal", "s0", "u" * 2048, "c|1") is None

    def test_tenant_quota_spares_other_tenants(self, tmp_path):
        disk = DiskCache(tmp_path, quota_bytes=1_000_000, tenant_quota_bytes=8_000)
        assert self._memo_put(disk, "quiet", 0)
        for index in range(12):
            assert self._memo_put(disk, "noisy", index)
        # the noisy tenant evicted only itself
        assert disk.get_memo("quiet", "minimal", "s0", "u" * 2048, "c|1") is not None
        assert disk.stats_payload()["tenant_bytes"]["noisy"] <= 8_000

    def test_oversized_payload_rejected_not_stored(self, tmp_path):
        disk = DiskCache(tmp_path, quota_bytes=4_096, tenant_quota_bytes=4_096)
        assert not self._memo_put(disk, "h1", 0, pad=10_000)
        assert disk.stats.put_rejects == 1
        assert len(disk) == 0

    def test_eviction_survives_restart(self, tmp_path):
        """Tombstones are durable: a reopened tier does not resurrect
        evicted entries."""
        disk = DiskCache(tmp_path, quota_bytes=16_000, tenant_quota_bytes=16_000)
        for index in range(12):
            self._memo_put(disk, "h1", index)
        live = {key for key in disk._index}
        reopened = DiskCache(tmp_path)
        assert {key for key in reopened._index} == live


class TestInvalidation:
    def test_engine_invalidate_memo_drops_disk_entries(
        self, tmp_path, schema, source, update
    ):
        disk, registry = _stack(tmp_path)
        engine = registry.get_or_compile(*schema)
        engine.propagate(source, update)
        assert any(e.kind == "memo" for e in disk._index.values())
        engine.invalidate_memo()
        assert not any(e.kind == "memo" for e in disk._index.values())
        # the artifact survives: schema compilation is still valid
        assert any(e.kind == "artifact" for e in disk._index.values())
        # a fresh process sees the drop too (tombstones are durable)
        fresh = DiskCache(tmp_path)
        assert not any(e.kind == "memo" for e in fresh._index.values())

    def test_registry_eviction_drops_tenant(self, tmp_path, schema, source, update):
        disk, _ = _stack(tmp_path)
        registry = EngineRegistry(capacity=1)
        registry.attach_disk_tier(disk)
        engine = registry.get_or_compile(*schema)
        engine.propagate(source, update)
        evicted_hash = engine.schema_hash
        # a second schema evicts the first from the 1-slot registry
        other = DTD({"r": "a*"}, alphabet=["a"]), Annotation.identity()
        registry.get_or_compile(*other)
        assert not any(
            entry.tenant == evicted_hash for entry in disk._index.values()
        )
        token = f"{evicted_hash}|minimal"
        assert token not in disk.manifest_payload()["tenants"]


class TestGarbageCollection:
    def test_gc_compacts_and_preserves_live_entries(self, tmp_path):
        disk = DiskCache(tmp_path, quota_bytes=16_000, tenant_quota_bytes=16_000)
        for index in range(12):  # evictions leave dead records + tombstones
            disk.put_memo(
                "h1", "minimal", f"s{index}", "u" * 2048, "c|1",
                f"Nop.r#n{index}", validated=False,
            )
        before = disk.stats_payload()
        report = disk.gc()
        assert report["live_entries"] == len(disk)
        assert report["file_bytes_after"] <= report["file_bytes_before"]
        assert disk.stats.bytes == before["bytes"]  # live payloads intact
        # everything live is still readable, in a fresh instance too
        reopened = DiskCache(tmp_path)
        assert len(reopened) == report["live_entries"]

    def test_gc_removes_quarantined_segments(self, tmp_path):
        from repro.cache.segments import scan_segment

        disk = DiskCache(tmp_path)
        disk.put_artifact("h1", "minimal", {"v": 1})
        disk.put_artifact("h2", "minimal", {"v": 2})
        seg = next(disk.root.glob("seg-*.log"))
        first = scan_segment(seg).records[0]
        data = bytearray(seg.read_bytes())
        # interior corruption: the first record is damaged but an intact
        # record follows, so this cannot be a torn tail
        data[first.offset + first.length // 2] ^= 0xFF
        seg.write_bytes(bytes(data))
        fresh = DiskCache(tmp_path)
        assert fresh.get_artifact("h1", "minimal") is None  # quarantined
        assert fresh.stats.quarantines == 1
        assert list(fresh.root.glob("*.bad"))
        fresh.gc()
        assert not list(fresh.root.glob("*.bad"))


class TestKillMidPut:
    def test_torn_tail_is_a_safe_miss_then_repaired(self, tmp_path, schema):
        """Kill-mid-put: a half-written record never surfaces, earlier
        records stay readable, and the next locked append repairs the
        tail in place."""
        disk = DiskCache(tmp_path)
        disk.put_artifact("h1", "minimal", {"v": 1})
        disk.put_memo("h1", "minimal", "s", "u", "c|1", "Nop.r#n0", validated=True)
        seg = max(tmp_path.glob("seg-*.log"))
        intact = seg.read_bytes()
        with open(seg, "ab") as handle:  # the interrupted put's torn tail
            handle.write(b"R 3 999 123456\n{\"op\":\"put\",\"k\":\"trunc")
        survivor = DiskCache(tmp_path)
        assert survivor.get_artifact("h1", "minimal") == {"v": 1}
        assert survivor.get_memo("h1", "minimal", "s", "u", "c|1") is not None
        assert len(survivor) == 2  # the torn record never happened
        # the next put truncates the tail and lands cleanly after it
        assert survivor.put_artifact("h2", "minimal", {"v": 2})
        assert seg.read_bytes()[: len(intact)] == intact
        assert DiskCache(tmp_path).get_artifact("h2", "minimal") == {"v": 2}

    def test_torn_header_segment_recovers(self, tmp_path):
        disk = DiskCache(tmp_path)
        seg = next(tmp_path.glob("seg-*.log"))
        seg.write_bytes(b"CSE")  # header itself torn mid-write
        fresh = DiskCache(tmp_path)
        assert fresh.put_artifact("h1", "minimal", {"v": 1})
        assert DiskCache(tmp_path).get_artifact("h1", "minimal") == {"v": 1}


class TestWarmupManifest:
    def test_manifest_records_tenants(self, tmp_path, schema, source, update):
        disk, registry = _stack(tmp_path)
        engine = registry.get_or_compile(*schema)
        engine.propagate(source, update)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        token = f"{engine.schema_hash}|minimal"
        assert manifest["tenants"][token]["uses"] >= 1

    def test_warm_preloads_registry(self, tmp_path, schema, source, update):
        baseline = _baseline_script(schema, source, update)
        _, first_registry = _stack(tmp_path)
        first_registry.get_or_compile(*schema).propagate(source, update)

        disk, registry = _stack(tmp_path)
        assert disk.warm(registry) == 1
        assert len(registry) == 1
        # the warmed engine serves without compiling or building graphs
        engine = registry.get_or_compile(*schema)
        assert registry.stats.hits == 1
        script = engine.propagate(source, update)
        assert engine.stats.disk_memo_hits == 1
        assert script.to_term() == baseline.to_term()

    def test_warm_limit_and_damage_tolerance(self, tmp_path, schema, source, update):
        _, first_registry = _stack(tmp_path)
        first_registry.get_or_compile(*schema).propagate(source, update)
        disk, registry = _stack(tmp_path)
        assert disk.warm(registry, limit=0) == 0
        (tmp_path / "manifest.json").write_text("{not json")
        assert disk.warm(registry) == 0  # damaged manifest: a safe no-op


class TestArtifactCodec:
    def test_payload_round_trips_through_hydration(self, tmp_path, schema):
        engine = ViewEngine(*schema).warm_up()
        payload = build_artifact_payload(engine, "minimal")
        assert payload is not None
        payload = json.loads(json.dumps(payload))  # storage round trip
        dtd, annotation = schema
        rebuilt = hydrate_engine(
            payload,
            dtd=dtd,
            annotation=annotation,
            factory=None,
            schema_hash=engine.schema_hash,
        )
        assert rebuilt is not None
        assert rebuilt.minimal_sizes == dict(engine.minimal_sizes)
        assert rebuilt.hidden_table == dict(engine.hidden_table)
        assert rebuilt.visible_table == dict(engine.visible_table)
        for symbol in engine.view_dtd.sorted_alphabet:
            ours = rebuilt.view_dtd.automaton(symbol)
            theirs = engine.view_dtd.automaton(symbol)
            assert ours.equivalent(theirs)

    def test_hydration_rejects_wrong_schema(self, tmp_path, schema):
        engine = ViewEngine(*schema).warm_up()
        payload = build_artifact_payload(engine, "minimal")
        dtd, annotation = schema
        assert (
            hydrate_engine(
                payload,
                dtd=dtd,
                annotation=annotation,
                factory=None,
                schema_hash="0" * 64,
            )
            is None
        )


class TestObservability:
    def test_stats_payload_gains_disk_cache_section(
        self, tmp_path, schema, source, update
    ):
        disk, registry = _stack(tmp_path)
        registry.get_or_compile(*schema).propagate(source, update)
        payload = registry.stats_payload()
        assert payload["disk_cache"]["puts"] >= 2  # artifact + memo
        assert payload["disk_cache"]["root"] == str(tmp_path)
        json.dumps(payload)  # the whole report must stay serializable

    def test_metrics_exposition_lines(self, tmp_path, schema, source, update):
        disk, registry = _stack(tmp_path)
        registry.get_or_compile(*schema).propagate(source, update)
        disk.get_artifact("missing", "minimal")
        text = render_metrics(
            registry=registry.stats_payload(), disk_cache=disk.stats_payload()
        )
        for name in (
            "repro_disk_cache_hits_total",
            "repro_disk_cache_misses_total",
            "repro_disk_cache_evictions_total",
            "repro_disk_cache_bytes",
            "repro_disk_cache_quarantines_total",
            "repro_disk_cache_entries",
        ):
            assert name in text
        assert f"repro_disk_cache_misses_total {disk.stats.misses}" in text
        assert f"repro_disk_cache_entries {len(disk)}" in text
