"""Corruption differential: a damaged cache is a miss, never a lie.

Mirrors ``tests/property/test_durability_roundtrips.py``'s failure
model for the disk cache tier: starting from one populated cache
directory, every scenario damages the segment file — truncation at
every record boundary, truncation mid-record, a flipped byte at the
start / middle / end of every record, and a damaged header — then
boots a completely fresh (DiskCache, EngineRegistry) stack over the
wreckage and serves the known request. The differential contract:

* no scenario raises into the serving tier;
* every produced edit script is **byte-identical** to the cache-free
  baseline (``ViewEngine`` with no tier attached);
* a scenario either hit intact records or degraded to a clean miss —
  there is no third outcome.
"""

import shutil

import pytest

from repro import EngineRegistry, ViewEngine
from repro.cache import DiskCache
from repro.cache.segments import scan_segment
from repro.editing import EditScript
from repro.paperdata.figures import a0, d0
from repro.xmltree import parse_term

pytestmark = pytest.mark.cache

SOURCE_TERM = "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
UPDATE_TERM = (
    "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
    "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))"
)


def _schema():
    return d0(), a0()


def _request():
    return parse_term(SOURCE_TERM), EditScript.parse(UPDATE_TERM)


@pytest.fixture(scope="module")
def baseline_term():
    source, update = _request()
    return ViewEngine(*_schema()).propagate(source, update).to_term()


@pytest.fixture(scope="module")
def populated_root(tmp_path_factory):
    """One cache directory holding the compiled artifact and the memo
    entry for the known request — the substrate every scenario damages
    its own copy of."""
    root = tmp_path_factory.mktemp("cache-substrate")
    disk = DiskCache(root)
    registry = EngineRegistry()
    registry.attach_disk_tier(disk)
    source, update = _request()
    registry.get_or_compile(*_schema()).propagate(source, update)
    assert len(disk) >= 2  # artifact + memo landed
    return root


def _segment(root):
    segments = sorted(root.glob("seg-*.log"))
    assert len(segments) == 1
    return segments[0]


def _damage_points(root):
    """Every (name, damage function) scenario for the substrate's one
    segment: truncations at and inside every record boundary, byte
    flips across every record, and header damage."""
    seg = _segment(root)
    scan = scan_segment(seg)
    size = seg.stat().st_size
    boundaries = [0] + [r.offset for r in scan.records] + [scan.intact_end]

    def truncate(at):
        def apply(path):
            with open(path, "r+b") as handle:
                handle.truncate(at)

        return apply

    def flip(at):
        def apply(path):
            data = bytearray(path.read_bytes())
            data[at] ^= 0xFF
            path.write_bytes(bytes(data))

        return apply

    scenarios = []
    for boundary in sorted(set(boundaries)):
        scenarios.append((f"truncate@{boundary}", truncate(boundary)))
        if boundary + 7 < size:  # mid-record: a few bytes past the boundary
            scenarios.append((f"truncate@{boundary}+7", truncate(boundary + 7)))
    for record in scan.records:
        for name, at in (
            ("start", record.offset),
            ("mid", record.offset + record.length // 2),
            ("end", record.offset + record.length - 2),
        ):
            scenarios.append((f"flip-r{record.seq}-{name}", flip(at)))
    scenarios.append(("flip-header", flip(2)))
    return scenarios


def _serve_over(root):
    """Boot a fresh stack over *root* and serve the known request."""
    disk = DiskCache(root)
    registry = EngineRegistry()
    registry.attach_disk_tier(disk)
    source, update = _request()
    engine = registry.get_or_compile(*_schema())
    return disk, engine, engine.propagate(source, update)


class TestCorruptionDifferential:
    def test_substrate_serves_warm(self, populated_root, baseline_term, tmp_path):
        """Sanity: the undamaged substrate actually warm-serves (the
        differential below would be vacuous otherwise)."""
        copy = tmp_path / "intact"
        shutil.copytree(populated_root, copy)
        disk, engine, script = _serve_over(copy)
        assert engine.stats.disk_memo_hits == 1
        assert script.to_term() == baseline_term
        # a validated memo hit never reads the artifact; forcing a
        # compiled table proves it still hydrates from disk
        assert engine.visible_table is not None
        assert disk.stats.artifact_hits >= 1

    def test_every_damage_is_a_clean_miss(
        self, populated_root, baseline_term, tmp_path
    ):
        scenarios = _damage_points(populated_root)
        assert len(scenarios) > 10  # boundaries + interiors + flips
        outcomes = []
        for index, (name, damage) in enumerate(scenarios):
            copy = tmp_path / f"case-{index}"
            shutil.copytree(populated_root, copy)
            damage(_segment(copy))
            disk, engine, script = _serve_over(copy)
            # the differential: byte-identical output, damage or not
            assert script.to_term() == baseline_term, name
            stats = disk.stats
            served_from_disk = engine.stats.disk_memo_hits == 1
            rebuilt = engine.stats.memo_misses == 1
            assert served_from_disk != rebuilt, name  # exactly one path
            outcomes.append((name, served_from_disk, stats.quarantines))
        # at least one scenario of each outcome class materialized:
        # intact-enough hits, clean misses, and quarantines
        assert any(hit for _, hit, _ in outcomes)
        assert any(not hit for _, hit, _ in outcomes)
        assert any(quarantines for _, _, quarantines in outcomes)

    def test_damage_after_warm_boot_degrades_midflight(
        self, populated_root, baseline_term, tmp_path
    ):
        """Damage landing *after* the index was built (point-read CRC
        failure) also degrades to a rebuild, not an exception."""
        copy = tmp_path / "midflight"
        shutil.copytree(populated_root, copy)
        disk = DiskCache(copy)
        registry = EngineRegistry()
        registry.attach_disk_tier(disk)
        assert len(disk) >= 2  # index built from intact files
        seg = _segment(copy)
        data = bytearray(seg.read_bytes())
        for at in range(len(data) // 4, len(data), len(data) // 4):
            data[at] ^= 0xFF
        seg.write_bytes(bytes(data))
        source, update = _request()
        engine = registry.get_or_compile(*_schema())
        script = engine.propagate(source, update)
        assert script.to_term() == baseline_term
