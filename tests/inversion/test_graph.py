"""Tests for inversion graphs, including the Figure 6 reproduction."""

import pytest

from repro import paperdata
from repro.dtd import DTD, InsertletPackage
from repro.errors import NoInversionError
from repro.inversion import (
    IVertex,
    inversion_graphs,
    invert,
    verify_inverse,
)
from repro.views import Annotation
from repro.xmltree import parse_term


class TestFigure6:
    """H_{n11} for the fragment d#n11(c#n13, c#n14), w.r.t. D0 and A0."""

    @pytest.fixture
    def graphs(self):
        return inversion_graphs(
            paperdata.d0(fig2_automata=True),
            paperdata.a0(),
            paperdata.fig6_view_fragment(),
        )

    def test_vertex_count_matches_figure(self, graphs):
        # {c0, n13, n14} × {p0, p1} = 6 vertices
        graph = graphs["n11"]
        assert graph.n_vertices == 6

    def test_edges_match_figure(self, graphs):
        graph = graphs["n11"]
        rendered = sorted(
            (repr(e.source), e.display(), repr(e.target)) for e in graph.all_edges()
        )
        assert rendered == sorted(
            [
                ("(c0,p0)", "Ins(a)", "(c0,p1)"),
                ("(c0,p0)", "Ins(b)", "(c0,p1)"),
                ("(c0,p1)", "Rec(1)", "(m1,p0)"),
                ("(m1,p0)", "Ins(a)", "(m1,p1)"),
                ("(m1,p0)", "Ins(b)", "(m1,p1)"),
                ("(m1,p1)", "Rec(2)", "(m2,p0)"),
                ("(m2,p0)", "Ins(a)", "(m2,p1)"),
                ("(m2,p0)", "Ins(b)", "(m2,p1)"),
            ]
        )

    def test_source_and_targets(self, graphs):
        graph = graphs["n11"]
        assert graph.source == IVertex(0, "p0")
        assert graph.targets == {IVertex(2, "p0")}

    def test_leaf_graphs_trivial(self, graphs):
        for leaf in ("n13", "n14"):
            graph = graphs[leaf]
            assert graph.n_edges == 0
            assert graph.source in graph.targets  # c → ε accepts the empty word

    def test_costs(self, graphs):
        # each c needs one invisible a-or-b before it
        assert graphs.costs["n13"] == 0
        assert graphs.costs["n14"] == 0
        assert graphs.costs["n11"] == 2
        assert graphs.min_inversion_size() == 5

    def test_figure6_inverse_shape(self, graphs):
        """invert() reproduces the figure's d(a, c, b, c) up to hidden names."""
        result = invert(
            paperdata.d0(fig2_automata=True),
            paperdata.a0(),
            paperdata.fig6_view_fragment(),
        )
        expected = paperdata.fig6_inverse()
        assert result.isomorphic(expected) or result.shape() in {
            expected.shape(),
            parse_term("d(a, c, a, c)").shape(),
            parse_term("d(b, c, b, c)").shape(),
            parse_term("d(b, c, a, c)").shape(),
        }
        # visible nodes keep their identifiers exactly
        assert result.children(result.root)[1] == "n13"
        assert result.children(result.root)[3] == "n14"

    def test_inverse_is_valid(self, graphs):
        dtd = paperdata.d0(fig2_automata=True)
        annotation = paperdata.a0()
        view = paperdata.fig6_view_fragment()
        result = invert(dtd, annotation, view)
        assert verify_inverse(dtd, annotation, view, result)

    def test_to_dot_renders(self, graphs):
        dot = graphs["n11"].to_dot()
        assert "Ins(a)" in dot and "Rec(1)" in dot


class TestWholeViewInversion:
    def test_invert_full_view0(self):
        dtd = paperdata.d0()
        annotation = paperdata.a0()
        view = paperdata.view0()
        result = invert(dtd, annotation, view)
        assert verify_inverse(dtd, annotation, view, result)

    def test_minimal_inverse_size_of_view0(self):
        graphs = inversion_graphs(paperdata.d0(), paperdata.a0(), paperdata.view0())
        # each of the two r-groups (a..d) needs one hidden (b|c) child of r:
        # a ? d a ? d → 2 hidden; each d child c needs one hidden a|b → 2 hidden
        assert graphs.min_inversion_size() == paperdata.view0().size + 4

    def test_fresh_hidden_ids_avoid_view(self):
        view = paperdata.view0()
        result = invert(paperdata.d0(), paperdata.a0(), view)
        hidden = result.node_set - view.node_set
        assert hidden  # some nodes were invented
        assert view.node_set <= result.node_set

    def test_view_of_inverse_has_same_ids(self):
        dtd, annotation, view = paperdata.d0(), paperdata.a0(), paperdata.view0()
        result = invert(dtd, annotation, view)
        assert annotation.view(result) == view  # identifier-exact


class TestNoInversion:
    def test_view_with_hidden_label_rejected(self):
        # b under r is hidden by A0, so no document has this view
        with pytest.raises(NoInversionError):
            inversion_graphs(paperdata.d0(), paperdata.a0(), parse_term("r(b)"))

    def test_view_outside_view_language(self):
        # r → (a·d)* in the view DTD; a lone 'a' child sequence is not a view
        with pytest.raises(NoInversionError):
            inversion_graphs(paperdata.d0(), paperdata.a0(), parse_term("r(a)"))

    def test_empty_view_rejected(self):
        from repro.xmltree import Tree

        with pytest.raises(NoInversionError):
            inversion_graphs(paperdata.d0(), paperdata.a0(), Tree.empty())


class TestInsertletFactory:
    def test_insertlets_change_inverse_content(self):
        dtd = DTD({"r": "(a,b)*", "b": "c*"})
        annotation = Annotation.hiding(("r", "b"))
        view = parse_term("r#v0(a#v1)")
        package = InsertletPackage.from_terms(dtd, {"b": "b(c)"}, strict=False)
        result = invert(dtd, annotation, view, factory=package)
        assert verify_inverse(dtd, annotation, view, result)
        # the invented b-subtree is the insertlet (b with one c), not minimal b
        b_nodes = [n for n in result.nodes() if result.label(n) == "b"]
        assert len(b_nodes) == 1
        assert result.child_labels(b_nodes[0]) == ("c",)

    def test_insertlet_weights_feed_costs(self):
        dtd = DTD({"r": "(a,b)*", "b": "c*"})
        annotation = Annotation.hiding(("r", "b"))
        view = parse_term("r#v0(a#v1)")
        package = InsertletPackage.from_terms(dtd, {"b": "b(c)"}, strict=False)
        graphs = inversion_graphs(dtd, annotation, view, factory=package)
        assert graphs.costs["v0"] == 2  # insertlet size, not minimal size 1
