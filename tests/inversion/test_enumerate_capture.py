"""Theorem 1 and 2 capture tests: graphs vs brute-force enumeration."""

import pytest

from repro import paperdata
from repro.dtd import DTD
from repro.generators.trees import enumerate_trees
from repro.inversion import (
    count_min_inversions,
    enumerate_inversions,
    enumerate_min_inversions,
    inversion_graphs,
    verify_inverse,
)
from repro.views import Annotation
from repro.xmltree import Tree, parse_term


def brute_force_inverses(dtd: DTD, annotation: Annotation, view: Tree, max_size: int):
    """Ground truth: all trees ⊨ D (≤ max_size) whose view is iso to `view`.

    Returned as identifier-exact trees: the unique ordered isomorphism
    maps candidate visible nodes onto the view's identifiers (the members
    of Inv are pinned on visible nodes, free on hidden ones).
    """
    results = []
    root_label = view.label(view.root)
    for candidate in enumerate_trees(dtd, root_label, max_size):
        candidate_view = annotation.view(candidate)
        mapping = candidate_view.isomorphism(view)
        if mapping is None:
            continue
        results.append(candidate.relabel_nodes(mapping))
    return results


CASES = [
    # (rules, hidden pairs, view term, size slack beyond the minimum)
    ({"r": "(a,b)*"}, [("r", "b")], "r#v(a#w)", 2),
    ({"r": "a,(b|c),d", "d": "((a|b),c)*"}, [("r", "b"), ("r", "c"), ("d", "a"), ("d", "b")], "r#v(a#w, d#x(c#y))", 2),
    ({"r": "b,(c|ε),(a,c)*"}, [("r", "b"), ("r", "a")], "r#v(c#w, c#x)", 2),
    ({"r": "(a|b)*,c"}, [("r", "a"), ("r", "b")], "r#v(c#w)", 2),
]


class TestTheorem2MinimalCapture:
    """H* captures Invmin: identical shape multisets as brute force."""

    @pytest.mark.parametrize("rules,hidden,view_term,slack", CASES)
    def test_minimal_inverses_match_brute_force(self, rules, hidden, view_term, slack):
        dtd = DTD(rules)
        annotation = Annotation.hiding(*hidden)
        view = parse_term(view_term)
        graphs = inversion_graphs(dtd, annotation, view)
        min_size = graphs.min_inversion_size()

        ground_truth = brute_force_inverses(dtd, annotation, view, min_size + slack)
        assert ground_truth, "brute force found no inverse — bad test case"
        brute_min = min(tree.size for tree in ground_truth)
        assert brute_min == min_size

        expected = sorted(
            tree.shape() for tree in ground_truth if tree.size == min_size
        )
        produced = sorted(
            tree.shape() for tree in enumerate_min_inversions(graphs)
        )
        assert produced == expected

    @pytest.mark.parametrize("rules,hidden,view_term,slack", CASES)
    def test_count_matches_enumeration(self, rules, hidden, view_term, slack):
        dtd = DTD(rules)
        annotation = Annotation.hiding(*hidden)
        view = parse_term(view_term)
        graphs = inversion_graphs(dtd, annotation, view)
        produced = list(enumerate_min_inversions(graphs))
        assert count_min_inversions(graphs, distinct_trees=True) == len(produced)


class TestTheorem1Capture:
    """The full graphs capture Inv (soundness + bounded completeness)."""

    @pytest.mark.parametrize("rules,hidden,view_term,slack", CASES)
    def test_every_enumerated_inversion_is_sound(self, rules, hidden, view_term, slack):
        dtd = DTD(rules)
        annotation = Annotation.hiding(*hidden)
        view = parse_term(view_term)
        graphs = inversion_graphs(dtd, annotation, view)
        budget = graphs.min_inversion_size() - view.size + slack
        produced = list(enumerate_inversions(graphs, max_hidden=budget, max_count=200))
        assert produced
        for tree in produced:
            assert verify_inverse(dtd, annotation, view, tree)

    def test_bounded_completeness_single_hidden_label(self):
        """With one hidden label, canonical trees lose nothing: exact match."""
        dtd = DTD({"r": "(a,b)*"})
        annotation = Annotation.hiding(("r", "b"))
        view = parse_term("r#v(a#w)")
        graphs = inversion_graphs(dtd, annotation, view)
        budget = 3  # up to 3 hidden b-nodes
        produced = sorted(
            set(
                tree.shape()
                for tree in enumerate_inversions(graphs, max_hidden=budget)
            )
        )
        expected = sorted(
            set(
                tree.shape()
                for tree in brute_force_inverses(dtd, annotation, view, view.size + budget)
            )
        )
        assert produced == expected

    def test_cyclic_paths_pump_hidden_content(self):
        """D1-style pumping: r → (a·b*)* hides b; inverses of r(a) abound."""
        dtd = paperdata.d1()
        annotation = paperdata.a1()
        view = parse_term("r#v(a#w)")
        graphs = inversion_graphs(dtd, annotation, view)
        produced = {
            tree.shape()
            for tree in enumerate_inversions(graphs, max_hidden=2)
        }
        assert parse_term("r(a)").shape() in produced
        assert parse_term("r(a, b)").shape() in produced
        assert parse_term("r(a, b, b)").shape() in produced
        assert len(produced) == 3


class TestPolynomialSize:
    """Section 3: |H(D,A,t′)| is polynomial in |D| and |t′|."""

    def test_size_linear_in_view_for_fixed_dtd(self):
        dtd = paperdata.d0()
        annotation = paperdata.a0()
        sizes = []
        for groups in [2, 4, 8]:
            body = ", ".join(f"a#a{i}, d#d{i}(c#c{i})" for i in range(groups))
            view = parse_term(f"r#v({body})")
            graphs = inversion_graphs(dtd, annotation, view)
            sizes.append((view.size, graphs.total_size))
        # doubling the view should roughly double the collection size
        (s1, g1), (s2, g2), (s3, g3) = sizes
        assert g2 < 3 * g1
        assert g3 < 3 * g2

    def test_explicit_bound(self):
        """|H_n| ≤ (k+1)·|Q| vertices and |δ|·(k+1) edges per node."""
        dtd = paperdata.d0()
        annotation = paperdata.a0()
        view = paperdata.view0()
        graphs = inversion_graphs(dtd, annotation, view)
        for node in graphs:
            graph = graphs[node]
            model = dtd.automaton(graph.label)
            k = len(graph.children)
            assert graph.n_vertices <= (k + 1) * len(model.states)
            assert graph.n_edges <= (k + 1) * model.n_transitions
