"""Theorems 3 and 4: propagation graphs capture P and Pmin.

Ground truth comes from a brute-force search that is independent of the
graph machinery: candidate *outputs* are all trees ⊨ D (bounded size)
whose view equals Out(S) identifier-exactly on visible nodes, and the
cost of realising an output is computed by a direct sequence-alignment
recursion (delete / keep / insert whole subtrees) over the source.
"""

import pytest

from repro import paperdata
from repro.core import (
    count_min_propagations,
    enumerate_min_propagations,
    enumerate_propagations,
    propagation_graphs,
    verify_propagation,
)
from repro.dtd import DTD
from repro.editing import EditScript
from repro.generators import enumerate_trees
from repro.views import Annotation
from repro.xmltree import parse_term


# ---------------------------------------------------------------------------
# Brute-force ground truth
# ---------------------------------------------------------------------------


def candidate_outputs(dtd, annotation, out_view, max_size):
    """All τ ⊨ D (≤ max_size) with A(τ) ≅ Out(S), visible ids pinned."""
    results = []
    for candidate in enumerate_trees(dtd, out_view.label(out_view.root), max_size):
        candidate_view = annotation.view(candidate)
        mapping = candidate_view.isomorphism(out_view)
        if mapping is None:
            continue
        results.append(candidate.relabel_nodes(mapping))
    return results


def realisation_cost(source, annotation, output):
    """Minimal script cost turning *source* into something hidden-isomorphic
    to *output* by whole-subtree deletes/inserts, visible ids pinned.

    Recursive alignment of children sequences; hidden source subtrees may
    be deleted or matched (kept) against shape-identical hidden output
    subtrees; everything unmatched in the output is inserted.
    """
    INF = float("inf")

    def node_cost(s_node, o_node):
        # both visible, same identifier (pinned): align the children
        s_kids = source.children(s_node)
        o_kids = output.children(o_node)
        s_label = source.label(s_node)

        from functools import lru_cache

        def hidden(label):
            return annotation.hides(s_label, label)

        def subtree_size(tree, node):
            return sum(1 for _ in tree.descendants_or_self(node))

        @lru_cache(maxsize=None)
        def align(i, j):
            if i == len(s_kids) and j == len(o_kids):
                return 0
            best = INF
            if i < len(s_kids):
                # delete the source child (visible deleted, or hidden dropped)
                best = min(
                    best, subtree_size(source, s_kids[i]) + align(i + 1, j)
                )
            if j < len(o_kids):
                o_kid = o_kids[j]
                if o_kid not in source:
                    # inserted subtree (fresh visible or fresh hidden)
                    best = min(
                        best, subtree_size(output, o_kid) + align(i, j + 1)
                    )
            if i < len(s_kids) and j < len(o_kids):
                s_kid, o_kid = s_kids[i], o_kids[j]
                if s_kid == o_kid:
                    # the same (visible) node: recurse
                    best = min(best, node_cost(s_kid, o_kid) + align(i + 1, j + 1))
                elif (
                    hidden(source.label(s_kid))
                    and o_kid not in source
                    and hidden(output.label(o_kid))
                    and source.subtree(s_kid).shape() == output.subtree(o_kid).shape()
                ):
                    # keep the hidden subtree unchanged (costs nothing)
                    best = min(best, align(i + 1, j + 1))
            return best

        return align(0, 0)

    if source.root != output.root:
        return INF
    return node_cost(source.root, output.root)


def brute_force_min(dtd, annotation, source, update, slack=3):
    """(min cost, set of minimal output shapes) by exhaustive search."""
    out_view = update.output_tree
    collection = propagation_graphs(dtd, annotation, source, update)
    bound = _output_size_bound(collection) + slack
    best = None
    shapes_by_cost = {}
    for output in candidate_outputs(dtd, annotation, out_view, bound):
        cost = realisation_cost(source, annotation, output)
        if cost == float("inf"):
            continue
        shapes_by_cost.setdefault(cost, set()).add(output.shape())
        if best is None or cost < best:
            best = cost
    return best, shapes_by_cost


def _output_size_bound(collection) -> int:
    """Any optimal output is at most |t| + min_cost nodes."""
    return collection.source.size + collection.min_cost()


# ---------------------------------------------------------------------------
# Cases
# ---------------------------------------------------------------------------


def case_d0_small():
    dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
    annotation = Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))
    source = parse_term("r#n0(a#n1, b#n2, d#n3(a#n7, c#n8))")
    # delete nothing; insert one (a, d) group in the view
    update = EditScript.parse(
        "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Ins.a#u0, Ins.d#u1)"
    )
    return dtd, annotation, source, update


def case_delete_group():
    dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
    annotation = Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))
    source = parse_term("r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6)")
    update = EditScript.parse(
        "Nop.r#n0(Del.a#n1, Del.d#n3(Del.c#n8), Nop.a#n4, Nop.d#n6)"
    )
    return dtd, annotation, source, update


def case_d3_positional():
    dtd = paperdata.d3()
    annotation = paperdata.a3()
    source = paperdata.d3_source()
    update = paperdata.d3_updated_view()
    return dtd, annotation, source, update


def case_finite_p():
    """No hidden symbols at all: P is finite and tiny."""
    dtd = DTD({"r": "a,b?"})
    annotation = Annotation.identity()
    source = parse_term("r#n0(a#n1)")
    update = EditScript.parse("Nop.r#n0(Nop.a#n1, Ins.b#u0)")
    return dtd, annotation, source, update


CASES = [case_d0_small, case_delete_group, case_d3_positional, case_finite_p]


# ---------------------------------------------------------------------------
# Theorem 4
# ---------------------------------------------------------------------------


class TestTheorem4MinimalCapture:
    @pytest.mark.parametrize("case", CASES)
    def test_min_cost_matches_brute_force(self, case):
        dtd, annotation, source, update = case()
        collection = propagation_graphs(dtd, annotation, source, update)
        brute_cost, _ = brute_force_min(dtd, annotation, source, update)
        assert brute_cost == collection.min_cost()

    @pytest.mark.parametrize("case", CASES)
    def test_minimal_outputs_match_brute_force(self, case):
        dtd, annotation, source, update = case()
        collection = propagation_graphs(dtd, annotation, source, update)
        brute_cost, shapes_by_cost = brute_force_min(dtd, annotation, source, update)
        expected = shapes_by_cost[brute_cost]
        produced = {
            script.output_tree.shape()
            for script in enumerate_min_propagations(collection)
        }
        assert produced == expected

    @pytest.mark.parametrize("case", CASES)
    def test_every_minimal_propagation_verifies(self, case):
        dtd, annotation, source, update = case()
        collection = propagation_graphs(dtd, annotation, source, update)
        scripts = list(enumerate_min_propagations(collection, max_count=100))
        assert scripts
        for script in scripts:
            assert verify_propagation(dtd, annotation, source, update, script)
            assert script.cost == collection.min_cost()

    @pytest.mark.parametrize("case", CASES)
    def test_count_matches_enumeration(self, case):
        dtd, annotation, source, update = case()
        collection = propagation_graphs(dtd, annotation, source, update)
        produced = list(enumerate_min_propagations(collection))
        assert count_min_propagations(collection, distinct_trees=True) == len(produced)


# ---------------------------------------------------------------------------
# Theorem 3
# ---------------------------------------------------------------------------


class TestTheorem3Capture:
    @pytest.mark.parametrize("case", CASES)
    def test_bounded_enumeration_sound(self, case):
        dtd, annotation, source, update = case()
        collection = propagation_graphs(dtd, annotation, source, update)
        budget = collection.min_cost() + 3
        scripts = list(
            enumerate_propagations(collection, max_cost=budget, max_count=150)
        )
        assert scripts
        for script in scripts:
            assert verify_propagation(dtd, annotation, source, update, script)
            assert script.cost <= budget

    def test_non_optimal_propagations_produced(self):
        """D1-style pumping: extra hidden b-insertions beyond the optimum."""
        dtd, annotation = paperdata.d1(), paperdata.a1()
        source = parse_term("r#n0(a#n1)")
        update = EditScript.parse("Nop.r#n0(Nop.a#n1, Ins.a#u0)")
        collection = propagation_graphs(dtd, annotation, source, update)
        assert collection.min_cost() == 1
        costs = sorted(
            {
                script.cost
                for script in enumerate_propagations(
                    collection, max_cost=3, max_count=200
                )
            }
        )
        assert costs == [1, 2, 3]  # the optimum plus pumped variants

    def test_finite_p_fully_enumerated(self):
        """With nothing hidden, P is exactly {the update itself}."""
        dtd, annotation, source, update = case_finite_p()
        collection = propagation_graphs(dtd, annotation, source, update)
        scripts = list(enumerate_propagations(collection, max_cost=10))
        assert len(scripts) == 1
        assert scripts[0].output_tree == update.output_tree
        assert scripts[0].input_tree == source

    def test_interleavings_counted_separately(self):
        """Del and Ins runs between common nodes shuffle: distinct scripts."""
        dtd = DTD({"r": "(a|b)*"})
        annotation = Annotation.hiding(("r", "b"))
        source = parse_term("r#n0(b#n1)")
        # the user inserts a visible a; the hidden b can stay or go, and
        # with a deletion the Del/Ins order gives two distinct scripts
        update = EditScript.parse("Nop.r#n0(Ins.a#u0)")
        collection = propagation_graphs(dtd, annotation, source, update)
        scripts = {
            script.to_term()
            for script in enumerate_propagations(collection, max_cost=2)
        }
        # keep-b before a, keep-b after a is impossible (b precedes in t);
        # expected: Nop(b),Ins(a) / Del(b),Ins(a) / Ins(a) ... with the
        # Del and Ins in both orders
        assert len(scripts) >= 3
        shapes = {EditScript.parse(term).shape() for term in scripts}
        assert parse_term("x").shape() is not None  # sanity of helper use
        assert any("Del.b" in term and "Ins.a" in term for term in scripts)
        assert any("Nop.b" in term for term in scripts)
