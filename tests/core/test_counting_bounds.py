"""The paper's quantitative bounds: 2^k optimal propagations, infinite P,
exponential minimal trees, and the insertlet workaround."""

import pytest

from repro import paperdata
from repro.core import (
    InsertletPackage,
    count_min_propagations,
    enumerate_min_propagations,
    propagate,
    propagation_graphs,
    verify_propagation,
)
from repro.dtd import minimal_size
from repro.graphutil import CycleError, count_paths


class TestTwoToTheKBound:
    """Section 4, 'Further results': D2 with k inserted a-nodes has
    exactly 2^k optimal propagations — the tight exponential bound."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5, 8])
    def test_count_is_two_to_the_k(self, k):
        source, update = paperdata.d2_update_insert_k(k)
        collection = propagation_graphs(
            paperdata.d2(), paperdata.a2(), source, update
        )
        assert count_min_propagations(collection) == 2**k

    def test_large_k_counts_stay_exact(self):
        """Counting is DP, not enumeration: k=40 is instant and exact."""
        source, update = paperdata.d2_update_insert_k(40)
        collection = propagation_graphs(
            paperdata.d2(), paperdata.a2(), source, update
        )
        assert count_min_propagations(collection) == 2**40

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_enumeration_realises_all_choices(self, k):
        source, update = paperdata.d2_update_insert_k(k)
        collection = propagation_graphs(
            paperdata.d2(), paperdata.a2(), source, update
        )
        scripts = list(enumerate_min_propagations(collection))
        assert len(scripts) == 2**k
        shapes = {script.shape() for script in scripts}
        assert len(shapes) == 2**k  # all genuinely distinct
        for script in scripts:
            assert verify_propagation(
                paperdata.d2(), paperdata.a2(), source, update, script
            )
            assert script.cost == 2 * k  # each insert brings one hidden node

    def test_choices_are_independent_b_or_c(self):
        source, update = paperdata.d2_update_insert_k(2)
        collection = propagation_graphs(
            paperdata.d2(), paperdata.a2(), source, update
        )
        hidden_labels = set()
        for script in enumerate_min_propagations(collection):
            invented = [
                script.symbol(node)
                for node in script.nodes()
                if node not in source.node_set and node not in update.node_set
            ]
            hidden_labels.add(tuple(sorted(invented)))
        assert hidden_labels == {("b", "b"), ("b", "c"), ("c", "c")}


class TestInfinitelyManyPropagations:
    """Section 4: D1 = r → (a·b*)* with hidden b admits infinitely many
    side-effect-free propagations of a single a-insertion."""

    def test_full_graph_has_cycles(self):
        from repro.editing import EditScript
        from repro.xmltree import parse_term

        source = parse_term("r#n0")
        update = EditScript.parse("Nop.r#n0(Ins.a#u0)")
        collection = propagation_graphs(
            paperdata.d1(), paperdata.a1(), source, update
        )
        graph = collection["n0"]
        with pytest.raises(CycleError):
            count_paths(graph.source, graph.targets, graph.edges_from)

    def test_optimal_graph_is_finite_and_minimal(self):
        from repro.editing import EditScript
        from repro.xmltree import parse_term

        source = parse_term("r#n0")
        update = EditScript.parse("Nop.r#n0(Ins.a#u0)")
        collection = propagation_graphs(
            paperdata.d1(), paperdata.a1(), source, update
        )
        # the paper: "an update inserting a node a is propagated to an
        # update that inserts this node only"
        assert collection.min_cost() == 1
        assert count_min_propagations(collection) == 1
        script = propagate(paperdata.d1(), paperdata.a1(), source, update)
        assert script.cost == 1
        assert script.output_tree.shape() == parse_term("r(a)").shape()


class TestExponentialMinimalTrees:
    """Section 5: propagation may require exponentially large insertions;
    insertlet packages make the complexity polynomial in |W| instead."""

    def test_minimal_size_exponential_in_dtd(self):
        for n in [2, 8, 32]:
            dtd = paperdata.exponential_dtd(n)
            assert minimal_size(dtd, "a") == 2 ** (n + 2) - 1
            # the DTD itself stays small while the minimal tree explodes
            assert dtd.size < 40 * (n + 2)

    def test_propagation_materialises_exponential_insert(self):
        """Small n: the forced invisible insertion really is the full tree."""
        from repro.dtd import DTD
        from repro.editing import EditScript
        from repro.views import Annotation
        from repro.xmltree import parse_term

        n = 2
        base = paperdata.exponential_dtd(n)
        rules = {sym: base.rule_regex(sym) for sym in base.alphabet
                 if base.has_explicit_rule(sym)}
        rules["r"] = "(v,a)*"  # a visible node forces one hidden 'a' sibling
        dtd = DTD(rules)
        annotation = Annotation.hiding(("r", "a"))
        source = parse_term("r#n0")
        update = EditScript.parse("Nop.r#n0(Ins.v#u0)")
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)
        assert script.cost == 1 + (2 ** (n + 2) - 1)

    def test_insertlets_bound_the_work(self):
        """With an insertlet for the hidden label, the propagation reuses
        the administrator's fragment (and its size enters the cost)."""
        from repro.dtd import DTD
        from repro.editing import EditScript
        from repro.views import Annotation
        from repro.xmltree import parse_term

        dtd = DTD({"r": "(v,h)*", "h": "x|(y,y)"})
        annotation = Annotation.hiding(("r", "h"))
        source = parse_term("r#n0")
        update = EditScript.parse("Nop.r#n0(Ins.v#u0)")
        package = InsertletPackage.from_terms(dtd, {"h": "h(x)"})
        script = propagate(dtd, annotation, source, update, factory=package)
        assert verify_propagation(dtd, annotation, source, update, script)
        # insertlet h(x) used: cost = v + |W_h| = 1 + 2
        assert script.cost == 3
