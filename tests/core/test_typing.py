"""Tests for typings Θ and type-preserving selection (Section 5)."""

import pytest

from repro.core import (
    AutomatonStateTyping,
    EDTDTyping,
    PreferenceChooser,
    TypePreservingChooser,
    preserves_typing,
    propagate,
)
from repro.dtd import DTD, EDTD
from repro.editing import EditScript
from repro.errors import NondeterministicAutomatonError, NoPropagationError
from repro.views import Annotation
from repro.xmltree import parse_term


@pytest.fixture
def typing_case():
    """A case where the cost optimum changes a kept node's type.

    ``r → a,(h|k),(a,(h|k))?`` with hidden h (size 1) and k (size 2,
    ``k → z``). Source ``r(a#x, h#p1, a#y, k#p2(z#q))``; the user deletes
    the visible ``a#y``. Keeping ``k#p2`` (cost 2) moves it from the
    second (h|k) slot to the first — its automaton state changes; the
    type-preserving alternative keeps ``h#p1`` instead (cost 3).
    """
    dtd = DTD({"r": "a,(h|k),(a,(h|k))?", "k": "z"})
    annotation = Annotation.hiding(("r", "h"), ("r", "k"))
    source = parse_term("r#n0(a#x, h#p1, a#y, k#p2(z#q))")
    update = EditScript.parse("Nop.r#n0(Nop.a#x, Del.a#y)")
    return dtd, annotation, source, update


class TestAutomatonStateTyping:
    def test_types_assigned_per_parent_run(self):
        dtd = DTD({"r": "a,(h|k),(a,(h|k))?", "k": "z"})
        typing = AutomatonStateTyping(dtd)
        tree = parse_term("r#n0(a#x, h#p1, a#y, k#p2(z#q))")
        types = typing.types(tree)
        assert types["n0"] == ("root", "r")
        # the two (h|k) slots are different automaton states
        assert types["p1"] != types["p2"]
        # the two 'a' positions differ as well
        assert types["x"] != types["y"]

    def test_nondeterministic_dtd_rejected(self):
        dtd = DTD({"r": "(a|b)*,a"})
        with pytest.raises(NondeterministicAutomatonError):
            AutomatonStateTyping(dtd)

    def test_invalid_tree_rejected(self):
        dtd = DTD({"r": "a,b"})
        typing = AutomatonStateTyping(dtd)
        with pytest.raises(NoPropagationError):
            typing.types(parse_term("r(b, a)"))

    def test_empty_tree(self):
        from repro.xmltree import Tree

        typing = AutomatonStateTyping(DTD({"r": "a*"}))
        assert typing.types(Tree.empty()) == {}


class TestEDTDTyping:
    def test_types_from_edtd(self):
        edtd = EDTD(
            {
                "Root": ("r", "TopA*"),
                "TopA": ("a", "b_sec*"),
                "b_sec": ("b", "InnerA*"),
                "InnerA": ("a", ""),
            },
            ["Root"],
        )
        typing = EDTDTyping(edtd)
        types = typing.types(parse_term("r#x(a#h(b#l(a#i)))"))
        assert types["h"] == "TopA"
        assert types["i"] == "InnerA"

    def test_preserves_typing_with_edtd(self):
        edtd = EDTD({"Root": ("r", "A_t*"), "A_t": ("a", "")}, ["Root"])
        typing = EDTDTyping(edtd)
        script = EditScript.parse("Nop.r#n0(Nop.a#n1, Ins.a#u0)")
        assert preserves_typing(typing, script)


class TestPreservesTyping:
    def test_identity_always_preserves(self, typing_case):
        dtd, annotation, source, _ = typing_case
        typing = AutomatonStateTyping(dtd)
        identity = EditScript.phantom(source)
        assert preserves_typing(typing, identity)

    def test_detects_state_change(self, typing_case):
        dtd, annotation, source, update = typing_case
        typing = AutomatonStateTyping(dtd)
        # keep k#p2 in the first slot: its state changes
        moved = EditScript.parse(
            "Nop.r#n0(Nop.a#x, Del.h#p1, Del.a#y, Nop.k#p2(Nop.z#q))"
        )
        assert not preserves_typing(typing, moved)


class TestTypePreservingChooser:
    def test_cost_optimum_changes_type(self, typing_case):
        dtd, annotation, source, update = typing_case
        result = propagate(dtd, annotation, source, update)
        assert result.cost == 2
        typing = AutomatonStateTyping(dtd)
        assert not preserves_typing(typing, result)

    def test_full_graph_chooser_preserves_at_higher_cost(self, typing_case):
        dtd, annotation, source, update = typing_case
        chooser = TypePreservingChooser(dtd, source)
        result = propagate(
            dtd, annotation, source, update, chooser=chooser, optimal=False
        )
        typing = AutomatonStateTyping(dtd)
        assert preserves_typing(typing, result)
        assert result.cost == 3  # pays one extra node to keep types
        from repro.core import verify_propagation

        assert verify_propagation(dtd, annotation, source, update, result)
        assert chooser.preserved_graphs >= 1

    def test_optimal_graphs_fall_back(self, typing_case):
        dtd, annotation, source, update = typing_case
        chooser = TypePreservingChooser(dtd, source)
        result = propagate(dtd, annotation, source, update, chooser=chooser)
        # the optimal subgraph only has the type-changing path: fallback
        assert chooser.fallback_graphs >= 1
        assert result.cost == 2

    def test_strict_raises_when_unpreservable(self, typing_case):
        dtd, annotation, source, update = typing_case
        chooser = TypePreservingChooser(dtd, source, strict=True)
        with pytest.raises(NoPropagationError):
            propagate(dtd, annotation, source, update, chooser=chooser)

    def test_preserving_path_chosen_when_optimal(self):
        """When the optimum itself preserves types, no fallback happens."""
        dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
        annotation = Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))
        source = parse_term("r#n0(a#n1, b#n2, d#n3(a#n7, c#n8))")
        update = EditScript.parse("Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8))")
        chooser = TypePreservingChooser(dtd, source)
        result = propagate(dtd, annotation, source, update, chooser=chooser)
        typing = AutomatonStateTyping(dtd)
        assert preserves_typing(typing, result)
        assert chooser.fallback_graphs == 0

    def test_base_chooser_used_for_inversions(self, typing_case):
        """Inserted content has no original types: base chooser handles it."""
        dtd, annotation, source, _ = typing_case
        view = annotation.view(source)
        update = EditScript.parse(
            "Nop.r#n0(Nop.a#x, Nop.a#y, Ins.a#u0)"
        )
        # Out = r(a,a,a): view DTD is r → a,a?  — wait, three a's invalid.
        # use a valid one instead: identity plus nothing.
        update = EditScript.phantom(view)
        chooser = TypePreservingChooser(dtd, source, base=PreferenceChooser())
        result = propagate(dtd, annotation, source, update, chooser=chooser)
        assert result.cost == 0
