"""Tests for the multi-view extension (Section 7 future work)."""

import pytest

from repro.core import propagate, verify_propagation
from repro.dtd import DTD
from repro.editing import EditScript, UpdateBuilder
from repro.errors import ReproError
from repro.multiview import (
    cross_view_report,
    propagate_min_disturbance,
    view_disturbance,
)
from repro.views import Annotation
from repro.xmltree import Tree, parse_term


@pytest.fixture
def two_views():
    """A schema with two observer classes.

    ``r → (pub, sec?)*``: editors see everything except ``sec``;
    auditors see ``sec`` but not ``pub``.
    """
    dtd = DTD({"r": "(pub,sec?)*", "pub": "", "sec": ""})
    editors = Annotation.hiding(("r", "sec"))
    auditors = Annotation.hiding(("r", "pub"))
    source = parse_term("r#n0(pub#p1, sec#s1, pub#p2)")
    return dtd, editors, auditors, source


class TestViewDisturbance:
    def test_identity_is_silent(self, two_views):
        _, editors, _, source = two_views
        disturbance = view_disturbance(editors, source, source)
        assert disturbance.is_silent
        assert disturbance.total == 0
        assert disturbance.summary() == "no visible change"

    def test_appeared_and_vanished(self, two_views):
        _, editors, _, source = two_views
        after = source.delete_subtree("p2").insert_subtree(
            "n0", 0, Tree.leaf("pub", "p9")
        )
        disturbance = view_disturbance(editors, source, after)
        assert disturbance.appeared == {"p9"}
        assert disturbance.vanished == {"p2"}
        assert disturbance.total == 2

    def test_hidden_changes_invisible(self, two_views):
        """Editors do not notice changes to sec-nodes."""
        _, editors, _, source = two_views
        after = source.delete_subtree("s1")
        assert view_disturbance(editors, source, after).is_silent

    def test_moved_nodes_detected(self):
        annotation = Annotation.identity()
        before = parse_term("r#x(a#1, b#2)")
        after = parse_term("r#x(b#2, a#1)")
        disturbance = view_disturbance(annotation, before, after)
        assert disturbance.moved == {"1", "2"}

    def test_relabelled_nodes_detected(self):
        annotation = Annotation.identity()
        before = parse_term("r#x(a#1)")
        after = parse_term("r#x(b#1)")
        disturbance = view_disturbance(annotation, before, after)
        assert disturbance.relabelled == {"1"}
        assert "relabelled" in disturbance.summary()

    def test_reparented_node_is_moved(self):
        annotation = Annotation.identity()
        before = parse_term("r#x(a#1(c#3), a#2)")
        after = parse_term("r#x(a#1, a#2(c#3))")
        disturbance = view_disturbance(annotation, before, after)
        assert "3" in disturbance.moved


class TestCrossViewReport:
    def test_report_keys(self, two_views):
        dtd, editors, auditors, source = two_views
        report = cross_view_report(
            {"editors": editors, "auditors": auditors}, source, source
        )
        assert set(report) == {"editors", "auditors"}
        assert all(d.is_silent for d in report.values())

    def test_collateral_visibility(self, two_views):
        """Deleting pub#p2 through the editor view: auditors see nothing
        (p2 was invisible to them anyway)."""
        dtd, editors, auditors, source = two_views
        view = editors.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.delete("p2")
        update = builder.script()
        script = propagate(dtd, editors, source, update)
        report = cross_view_report(
            {"auditors": auditors}, source, script.output_tree
        )
        assert report["auditors"].is_silent


class TestPropagateMinDisturbance:
    def test_picks_quieter_optimal_candidate(self):
        """Deleting a visible node forces dropping one hidden neighbour;
        two optimal ways exist, disturbing the auditor differently."""
        dtd = DTD({"r": "(v,(h1|h2))*", "v": "", "h1": "", "h2": ""})
        primary = Annotation.hiding(("r", "h1"), ("r", "h2"))
        # the auditor sees h1 but not h2 (nor v)
        auditor = Annotation.hiding(("r", "v"), ("r", "h2"))
        source = parse_term("r#n0(v#v1, h1#x1)")
        view = primary.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.insert("n0", parse_term("v#u0"))
        update = builder.script()
        result = propagate_min_disturbance(
            dtd, primary, {"auditor": auditor}, source, update
        )
        assert verify_propagation(dtd, primary, source, update, result.script)
        # the chosen propagation inserts h2 (invisible to the auditor),
        # not h1 (visible to them): zero disturbance
        assert result.disturbances["auditor"].is_silent
        assert result.total_disturbance == 0
        assert result.candidates_considered >= 2

    def test_baseline_when_single_candidate(self, two_views):
        dtd, editors, auditors, source = two_views
        identity = EditScript.phantom(editors.view(source))
        result = propagate_min_disturbance(
            dtd, editors, {"auditors": auditors}, source, identity
        )
        assert result.script.is_identity()
        assert result.candidates_considered == 1
        assert not result.truncated
        assert "auditors" in result.summary()

    def test_cap_respected(self):
        source, k = parse_term("r#n0"), 6
        from repro import paperdata

        src, update = paperdata.d2_update_insert_k(k)
        result = propagate_min_disturbance(
            paperdata.d2(),
            paperdata.a2(),
            {},
            src,
            update,
            max_candidates=8,
        )
        assert result.truncated  # 2^6 = 64 optimal candidates > 8
        assert result.candidates_considered == 8

    def test_bad_cap_rejected(self, two_views):
        dtd, editors, auditors, source = two_views
        identity = EditScript.phantom(editors.view(source))
        with pytest.raises(ReproError):
            propagate_min_disturbance(
                dtd, editors, {}, source, identity, max_candidates=0
            )

    def test_primary_view_always_exact(self, two_views):
        """Minimising secondary disturbance never compromises the primary."""
        dtd, editors, auditors, source = two_views
        view = editors.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.delete("p2")
        builder.insert("n0", parse_term("pub#u0"))
        update = builder.script()
        result = propagate_min_disturbance(
            dtd, editors, {"auditors": auditors}, source, update
        )
        assert editors.view(result.script.output_tree) == update.output_tree
