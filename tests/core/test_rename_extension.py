"""The Section 7 renaming extension: scripts, builder, propagation.

The paper names "renaming a node" as the first future-work operation
(Section 7). The extension here: a kept visible node may change its
label (cost 1); the propagation graph gains a (vii)-edge that drives the
parent's automaton with the *new* label and recurses into the renamed
node's own graph built over the new label's content model. Renames are
restricted to label pairs with identical child-visibility profiles —
otherwise hidden content would silently appear in (or vanish from) the
view and no side-effect-free propagation could exist.
"""

import pytest

from repro.core import (
    count_min_propagations,
    enumerate_min_propagations,
    propagate,
    propagation_graphs,
    verify_propagation,
)
from repro.dtd import DTD
from repro.editing import EditScript, Op, UpdateBuilder, ren
from repro.errors import InvalidScriptError, InvalidViewUpdateError
from repro.views import Annotation
from repro.xmltree import parse_term


@pytest.fixture
def doc_case():
    """Articles can be renamed to notes; both carry hidden audit children."""
    dtd = DTD(
        {
            "doc": "(article|note)*",
            "article": "title,audit?",
            "note": "title,audit?",
            "title": "",
            "audit": "",
        }
    )
    annotation = Annotation.hiding(("article", "audit"), ("note", "audit"))
    source = parse_term(
        "doc#d(article#a1(title#t1, audit#x1), article#a2(title#t2))"
    )
    return dtd, annotation, source


class TestEditLabelRen:
    def test_ren_label(self):
        label = ren("article", "note")
        assert str(label) == "Ren(article→note)"
        assert label.output_symbol == "note"
        assert label.is_kept and label.is_rename

    def test_self_rename_rejected(self):
        with pytest.raises(InvalidScriptError):
            ren("a", "a")

    def test_target_only_for_ren(self):
        from repro.editing import EditLabel

        with pytest.raises(InvalidScriptError):
            EditLabel(Op.NOP, "a", "b")
        with pytest.raises(InvalidScriptError):
            EditLabel(Op.REN, "a")

    def test_parse_forms(self):
        from repro.editing import parse_edit_label

        assert parse_edit_label("Ren(a→b)") == ren("a", "b")
        assert parse_edit_label("Ren(a->b)") == ren("a", "b")
        assert parse_edit_label("Ren.a.b") == ren("a", "b")
        with pytest.raises(InvalidScriptError):
            parse_edit_label("Ren(a)")


class TestScriptWithRenames:
    def test_in_out_labels(self):
        script = EditScript.parse("Nop.doc#d(Ren.article.note#a1(Nop.title#t1))")
        assert script.input_tree.label("a1") == "article"
        assert script.output_tree.label("a1") == "note"
        assert script.cost == 1

    def test_term_round_trip(self):
        script = EditScript.parse("Nop.doc#d(Ren.article.note#a1(Nop.title#t1))")
        assert EditScript.parse(script.to_term()) == script

    def test_ren_under_ins_rejected(self):
        with pytest.raises(InvalidScriptError):
            EditScript.parse("Ins.doc#d(Ren.a.b#x)")

    def test_kept_nodes_include_renames(self):
        script = EditScript.parse("Nop.doc#d(Ren.article.note#a1, Del.article#a2)")
        assert list(script.kept_nodes()) == ["d", "a1"]
        assert list(script.nop_nodes()) == ["d"]


class TestBuilderRename:
    def test_rename_original_node(self, doc_case):
        _, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "note")
        script = builder.script()
        assert script.op("a1") is Op.REN
        assert script.output_tree.label("a1") == "note"
        assert script.cost == 1

    def test_rename_back_cancels(self, doc_case):
        _, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "note").rename("a1", "article")
        assert builder.script().is_identity()

    def test_rename_inserted_relabels(self, doc_case):
        _, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.insert("d", parse_term("article#u0(title#u1)"))
        builder.rename("u0", "note")
        script = builder.script()
        assert script.op("u0") is Op.INS
        assert script.symbol("u0") == "note"

    def test_rename_deleted_rejected(self, doc_case):
        _, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.delete("a1")
        with pytest.raises(InvalidScriptError):
            builder.rename("a1", "note")

    def test_delete_renamed_becomes_plain_delete(self, doc_case):
        _, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "note")
        builder.delete("a1")
        script = builder.script()
        assert script.op("a1") is Op.DEL
        assert script.symbol("a1") == "article"

    def test_current_output_shows_new_label(self, doc_case):
        _, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "note")
        assert builder.current_output().label("a1") == "note"


class TestRenamePropagation:
    def test_rename_propagates_and_keeps_hidden_audit(self, doc_case):
        dtd, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "note")
        update = builder.script()
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)
        assert script.cost == 1  # just the rename; the hidden audit stays
        out = script.output_tree
        assert out.label("a1") == "note"
        assert "x1" in out  # the hidden audit node was kept, not rebuilt
        assert out.children("a1") == ("t1", "x1")

    def test_rename_with_other_ops(self, doc_case):
        dtd, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "note")
        builder.delete("a2")
        builder.insert("d", parse_term("article#u0(title#u1)"))
        update = builder.script()
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)

    def test_rename_changing_content_model(self):
        """The renamed node's children must satisfy the *new* rule; the
        propagation inserts the hidden child the new label demands."""
        dtd = DTD(
            {
                "doc": "(a|b)*",
                "a": "t",
                "b": "t,h",  # b requires a hidden h-child
                "t": "",
                "h": "",
            }
        )
        annotation = Annotation.hiding(("a", "h"), ("b", "h"))
        source = parse_term("doc#d(a#n1(t#n2))")
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("n1", "b")
        update = builder.script()
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)
        out = script.output_tree
        assert out.label("n1") == "b"
        assert out.child_labels("n1") == ("t", "h")  # invented hidden h
        assert script.cost == 2  # rename + one hidden insertion

    def test_rename_changing_visibility_rejected(self):
        """a→b where b hides its t-children: the rename would make kept
        content vanish from the view — rejected by validation."""
        dtd = DTD({"doc": "(a|b)*", "a": "t*", "b": "t*", "t": ""})
        annotation = Annotation.hiding(("b", "t"))
        source = parse_term("doc#d(a#n1(t#n2))")
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("n1", "b")
        builder.delete("n2")  # even explicitly deleting the child won't help
        with pytest.raises(InvalidViewUpdateError):
            propagate(dtd, annotation, source, builder.script())

    def test_rename_target_outside_alphabet_rejected(self, doc_case):
        dtd, annotation, source = doc_case
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "memo")
        with pytest.raises(InvalidViewUpdateError):
            propagate(dtd, annotation, source, builder.script())

    def test_rename_where_parent_model_forbids_target(self):
        dtd = DTD({"doc": "a*", "a": "", "b": ""})
        annotation = Annotation.identity()
        source = parse_term("doc#d(a#n1)")
        builder = UpdateBuilder(annotation.view(source), forbidden_ids=source.nodes())
        builder.rename("n1", "b")  # doc accepts only a-children
        with pytest.raises(InvalidViewUpdateError):
            propagate(dtd, annotation, source, builder.script())


class TestRenameCountingAndEnumeration:
    def test_counting_through_renames(self):
        """A rename that forces a hidden (b|c)-style choice still counts."""
        dtd = DTD({"doc": "x*", "x": "(h1|h2)?", "y": "h1|h2", "h1": "", "h2": ""})
        rules_annotation = Annotation.hiding(
            ("x", "h1"), ("x", "h2"), ("y", "h1"), ("y", "h2")
        )
        # rename x (childless) to y (requires one hidden child): 2 choices
        dtd = DTD(
            {"doc": "(x|y)*", "x": "(h1|h2)?", "y": "h1|h2", "h1": "", "h2": ""}
        )
        source = parse_term("doc#d(x#n1)")
        builder = UpdateBuilder(
            rules_annotation.view(source), forbidden_ids=source.nodes()
        )
        builder.rename("n1", "y")
        update = builder.script()
        collection = propagation_graphs(dtd, rules_annotation, source, update)
        assert collection.min_cost() == 2  # rename + one hidden node
        assert count_min_propagations(collection) == 2  # h1 or h2
        scripts = list(enumerate_min_propagations(collection))
        assert len(scripts) == 2
        for script in scripts:
            assert verify_propagation(
                dtd, rules_annotation, source, update, script
            )
