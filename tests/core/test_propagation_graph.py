"""Tests for propagation-graph construction, incl. the Figure 8 reproduction."""

import pytest

from repro import paperdata
from repro.core import EdgeKind, PVertex, propagation_graphs
from repro.editing import EditScript
from repro.errors import InvalidViewUpdateError

@pytest.fixture(scope="module")
def collection():
    """G(D0, A0, t0, S0) with the figure-exact automata."""
    return propagation_graphs(
        paperdata.d0(fig2_automata=True),
        paperdata.a0(),
        paperdata.t0(),
        paperdata.s0(),
    )


class TestCollection:
    def test_one_graph_per_phantom_node(self, collection):
        assert set(collection) == {"n0", "n4", "n6", "n10"}

    def test_inversion_collections_for_inserted_subtrees(self, collection):
        # S0 visibly inserts d#n11 and a#n12 under n0, and c#n15 under n6
        assert set(collection.insertions) == {"n11", "n12", "n15"}

    def test_insert_costs_are_min_inversion_sizes(self, collection):
        assert collection.insertions["n11"].min_inversion_size() == 5
        assert collection.insertions["n12"].min_inversion_size() == 1
        assert collection.insertions["n15"].min_inversion_size() == 1


class TestFigure8:
    """G_{n6}: t-children (b#n9, c#n10), S-children (Nop c#n10, Ins c#n15)."""

    def test_segments(self, collection):
        graph = collection["n6"]
        assert graph.t_children == ("n9", "n10")
        assert graph.s_children == ("n10", "n15")
        # common nodes: {c0, n10}; n9 is hidden, n15 is inserted
        assert graph.seg_t == (0, 0, 1)
        assert graph.seg_s == (0, 1, 1)

    def test_vertex_count_matches_figure(self, collection):
        # {c0,n9}×{p0,p1}×{c0} ∪ {n10}×{p0,p1}×{n10,n15} = 4 + 4 = 8
        assert collection["n6"].n_vertices == 8

    def test_edges_match_figure(self, collection):
        graph = collection["n6"]
        rendered = sorted(
            (repr(e.source), e.display(), e.kind.value, repr(e.target))
            for e in graph.all_edges()
        )
        assert rendered == sorted([
            # (i) invisible inserts at every vertex (a and b under d are hidden)
            ("(c0,p0,c0)", "Ins(a)", "i", "(c0,p1,c0)"),
            ("(c0,p0,c0)", "Ins(b)", "i", "(c0,p1,c0)"),
            ("(m1,p0,c0)", "Ins(a)", "i", "(m1,p1,c0)"),
            ("(m1,p0,c0)", "Ins(b)", "i", "(m1,p1,c0)"),
            ("(m2,p0,m'1)", "Ins(a)", "i", "(m2,p1,m'1)"),
            ("(m2,p0,m'1)", "Ins(b)", "i", "(m2,p1,m'1)"),
            ("(m2,p0,m'2)", "Ins(a)", "i", "(m2,p1,m'2)"),
            ("(m2,p0,m'2)", "Ins(b)", "i", "(m2,p1,m'2)"),
            # (ii) invisible delete of b#n9 (state unchanged)
            ("(c0,p0,c0)", "Del(b)", "ii", "(m1,p0,c0)"),
            ("(c0,p1,c0)", "Del(b)", "ii", "(m1,p1,c0)"),
            # (iii) invisible nop of b#n9 (consumes b: p0 → p1)
            ("(c0,p0,c0)", "Nop(b)", "iii", "(m1,p1,c0)"),
            # (iv) visible insert of c#n15 (consumes c: p1 → p0)
            ("(m2,p1,m'1)", "Ins(c)", "iv", "(m2,p0,m'2)"),
            # (vi) visible nop of c#n10 (consumes c: p1 → p0)
            ("(m1,p1,c0)", "Nop(c)", "vi", "(m2,p0,m'1)"),
        ])

    def test_source_and_targets(self, collection):
        graph = collection["n6"]
        assert graph.source == PVertex(0, "p0", 0)
        assert graph.targets == {PVertex(2, "p0", 2)}

    def test_figure8_selected_path_cost(self, collection):
        # Nop(b), Nop(c), Ins(a), Ins(c): 0 + 0 + 1 + 1 = 2
        assert collection.costs["n6"] == 2

    def test_to_dot(self, collection):
        dot = collection["n6"].to_dot()
        assert "Nop(c)" in dot and "doublecircle" in dot


class TestLeafGraphs:
    def test_nop_leaf_graph_trivial(self, collection):
        # a#n4 has no children in t or S
        graph = collection["n4"]
        assert graph.n_vertices == 1
        assert graph.n_edges == 0
        assert collection.costs["n4"] == 0

    def test_kept_leaf_under_kept_parent(self, collection):
        # c#n10 under d#n6: no children at all
        assert collection.costs["n10"] == 0


class TestRootGraph:
    def test_cheapest_cost_matches_figure7(self, collection):
        """Figure 7's propagation costs 14 — and it is optimal."""
        assert collection.min_cost() == paperdata.fig7_propagation().cost == 14

    def test_edge_kinds_present(self, collection):
        kinds = {edge.kind for edge in collection["n0"].all_edges()}
        assert EdgeKind.INVISIBLE_INSERT in kinds
        assert EdgeKind.INVISIBLE_DELETE in kinds
        assert EdgeKind.INVISIBLE_NOP in kinds
        assert EdgeKind.VISIBLE_INSERT in kinds
        assert EdgeKind.VISIBLE_DELETE in kinds
        assert EdgeKind.VISIBLE_NOP in kinds

    def test_polynomial_bound(self, collection):
        dtd = paperdata.d0(fig2_automata=True)
        for node in collection:
            graph = collection[node]
            q = len(dtd.automaton(graph.label).states)
            k = len(graph.t_children)
            ell = len(graph.s_children)
            assert graph.n_vertices <= (k + 1) * q * (ell + 1)


class TestValidation:
    def test_wrong_view_rejected(self):
        bad = EditScript.parse("Nop.r#n0(Nop.a#n1)")  # not A0(t0)
        with pytest.raises(InvalidViewUpdateError):
            propagation_graphs(
                paperdata.d0(), paperdata.a0(), paperdata.t0(), bad
            )

    def test_hidden_id_reuse_rejected(self):
        # n2 is hidden in t0; inserting a node with that id is forbidden
        script = EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
            "Ins.d#n2, Nop.d#n6(Nop.c#n10))"
        )
        with pytest.raises(InvalidViewUpdateError):
            propagation_graphs(
                paperdata.d0(), paperdata.a0(), paperdata.t0(), script
            )

    def test_output_outside_view_language_rejected(self):
        # deleting a d leaves "a" alone: not in the view DTD r → (a·d)*
        script = EditScript.parse(
            "Nop.r#n0(Nop.a#n1, Del.d#n3(Del.c#n8), Nop.a#n4, Nop.d#n6(Nop.c#n10))"
        )
        with pytest.raises(InvalidViewUpdateError):
            propagation_graphs(
                paperdata.d0(), paperdata.a0(), paperdata.t0(), script
            )

    def test_identity_update_accepted(self):
        view = paperdata.view0()
        identity = EditScript.phantom(view)
        collection = propagation_graphs(
            paperdata.d0(), paperdata.a0(), paperdata.t0(), identity
        )
        assert collection.min_cost() == 0
