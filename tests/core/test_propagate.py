"""End-to-end propagation tests: Figures 7, 9, 10 and the algorithm."""

import pytest

from repro import paperdata
from repro.core import (
    CheapestPathChooser,
    InsertletPackage,
    PreferenceChooser,
    count_min_propagations,
    is_schema_compliant,
    is_side_effect_free,
    propagate,
    propagation_graphs,
    verify_propagation,
)
from repro.editing import EditScript, Op, UpdateBuilder
from repro.xmltree import NodeIds, parse_term


@pytest.fixture(scope="module")
def setup():
    return (
        paperdata.d0(fig2_automata=True),
        paperdata.a0(),
        paperdata.t0(),
        paperdata.s0(),
    )


class TestPaperRunningExample:
    def test_propagation_is_valid(self, setup):
        dtd, annotation, source, update = setup
        result = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, result)

    def test_propagation_is_optimal_cost(self, setup):
        dtd, annotation, source, update = setup
        result = propagate(dtd, annotation, source, update)
        assert result.cost == 14  # Figure 7's cost

    def test_figure7_shape_reproduced(self, setup):
        """The Nop-preferring chooser reproduces Figure 7 up to fresh ids
        and up to the free a-vs-b choices of invisible insertions (the
        paper's figure picks ``b`` at n17/n19; both are optimal — Figure
        10 draws both alternatives)."""
        dtd, annotation, source, update = setup
        result = propagate(dtd, annotation, source, update)
        expected = paperdata.fig7_propagation()

        def normalise(shape):
            label, children = shape
            if label == "Ins(b)" and not children:
                label = "Ins(a)"  # a and b are interchangeable hidden leaves
            return (label, tuple(normalise(child) for child in children))

        assert normalise(result.shape()) == normalise(expected.shape())

    def test_figure7_is_itself_a_valid_propagation(self, setup):
        dtd, annotation, source, update = setup
        fig7 = paperdata.fig7_propagation()
        assert verify_propagation(dtd, annotation, source, update, fig7)

    def test_figure9_fragment_appears(self, setup):
        """The n6 fragment of the result matches Figure 9 up to fresh ids."""
        dtd, annotation, source, update = setup
        result = propagate(dtd, annotation, source, update)
        fragment = result.subscript("n6")
        assert fragment.shape() == paperdata.fig9_fragment().shape()
        # the kept nodes keep their identifiers exactly
        assert fragment.op("n9") is Op.NOP
        assert fragment.op("n10") is Op.NOP
        assert fragment.op("n15") is Op.INS

    def test_inserted_visible_ids_preserved(self, setup):
        """Side-effect-freeness pins n11..n15 in the propagation output."""
        dtd, annotation, source, update = setup
        result = propagate(dtd, annotation, source, update)
        for node in ("n11", "n12", "n13", "n14", "n15"):
            assert node in result.node_set
            assert result.op(node) is Op.INS

    def test_with_glushkov_automata_same_cost(self):
        """The state set does not matter, only the language: cost stays 14."""
        result = propagate(
            paperdata.d0(), paperdata.a0(), paperdata.t0(), paperdata.s0()
        )
        assert result.cost == 14
        assert verify_propagation(
            paperdata.d0(), paperdata.a0(), paperdata.t0(), paperdata.s0(), result
        )


class TestFigure10OptimalGraph:
    def test_optimal_root_graph_path_edges(self, setup):
        """The selected path in G*_{n0} is Del,Del,Del,Nop,Nop,Ins,Ins,Ins,Nop."""
        dtd, annotation, source, update = setup
        collection = propagation_graphs(dtd, annotation, source, update)
        chooser = PreferenceChooser()
        path = chooser.choose(collection.optimal("n0"))
        assert [edge.display() for edge in path] == [
            "Del(a)", "Del(b)", "Del(d)", "Nop(a)", "Nop(c)",
            "Ins(d)", "Ins(a)", "Ins(b)", "Nop(d)",
        ]

    def test_optimal_graph_is_dag_and_smaller(self, setup):
        dtd, annotation, source, update = setup
        collection = propagation_graphs(dtd, annotation, source, update)
        full = collection["n0"]
        optimal = collection.optimal("n0")
        assert optimal.n_edges < full.n_edges
        assert optimal.cost == 14
        # DAG check: counting paths must terminate without CycleError
        count_min_propagations(collection)

    def test_alternative_optimal_choices_exist(self, setup):
        """Figure 10 shows Ins(b)/Ins(c) alternatives: count > 1."""
        dtd, annotation, source, update = setup
        collection = propagation_graphs(dtd, annotation, source, update)
        assert count_min_propagations(collection) > 1


class TestChoosers:
    def test_cheapest_chooser_on_full_graphs(self, setup):
        dtd, annotation, source, update = setup
        result = propagate(
            dtd, annotation, source, update,
            chooser=CheapestPathChooser(), optimal=False,
        )
        assert verify_propagation(dtd, annotation, source, update, result)
        assert result.cost == 14  # cheapest on the full graph is optimal too

    def test_choosers_are_deterministic(self, setup):
        dtd, annotation, source, update = setup
        first = propagate(dtd, annotation, source, update,
                          fresh=NodeIds("z").fresh)
        second = propagate(dtd, annotation, source, update,
                           fresh=NodeIds("z").fresh)
        assert first == second

    def test_preference_order_changes_script(self):
        """Del-preferring vs Nop-preferring differ on kept hidden nodes."""
        from repro.core import DEL_OVER_NOP_OVER_INS

        dtd, annotation = paperdata.d0(), paperdata.a0()
        source = paperdata.t0()
        update = paperdata.s0()
        nop_pref = propagate(dtd, annotation, source, update)
        del_pref = propagate(
            dtd, annotation, source, update,
            chooser=PreferenceChooser(DEL_OVER_NOP_OVER_INS),
        )
        assert verify_propagation(dtd, annotation, source, update, del_pref)
        # both optimal (same cost), but the scripts may differ in which
        # equal-cost alternative they pick
        assert del_pref.cost == nop_pref.cost == 14


class TestInsertlets:
    def test_insertlets_used_for_invisible_inserts(self):
        from repro.dtd import DTD
        from repro.views import Annotation

        dtd = DTD({"r": "(a,h)*", "h": "x*"})
        annotation = Annotation.hiding(("r", "h"))
        source = parse_term("r#n0(a#n1, h#n2)")
        view = annotation.view(source)
        builder = UpdateBuilder(view)
        builder.insert("n0", parse_term("a#u0"))
        update = builder.script()
        package = InsertletPackage.from_terms(dtd, {"h": "h(x, x)"}, strict=False)
        result = propagate(dtd, annotation, source, update, factory=package)
        assert verify_propagation(dtd, annotation, source, update, result)
        # the inserted hidden h-subtree is the insertlet (h with two x)
        new_h = [
            n for n in result.output_tree.nodes()
            if result.output_tree.label(n) == "h" and n != "n2"
        ]
        assert len(new_h) == 1
        assert result.output_tree.child_labels(new_h[0]) == ("x", "x")

    def test_fig7_example_with_minimal_package(self, setup):
        dtd, annotation, source, update = setup
        package = InsertletPackage.minimal(dtd)
        result = propagate(dtd, annotation, source, update, factory=package)
        assert result.cost == 14


class TestBuilderIntegration:
    def test_builder_to_propagation_pipeline(self):
        dtd, annotation = paperdata.d0(), paperdata.a0()
        source = paperdata.t0()
        view = annotation.view(source)
        builder = UpdateBuilder(view)
        builder.delete("n1")
        builder.delete("n3")
        builder.insert_after("n4", parse_term("d#n11(c#n13, c#n14)"))
        builder.insert_after("n11", parse_term("a#n12"))
        builder.insert("n6", parse_term("c#n15"))
        update = builder.script()
        result = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, result)
        assert result.cost == 14


class TestFreshIdentifiers:
    def test_invented_ids_avoid_source_and_update(self, setup):
        dtd, annotation, source, update = setup
        result = propagate(dtd, annotation, source, update)
        invented = result.node_set - source.node_set - update.node_set
        assert invented, "the example requires invented hidden nodes"
        for node in invented:
            assert result.op(node) is Op.INS

    def test_custom_fresh_generator(self, setup):
        dtd, annotation, source, update = setup
        result = propagate(
            dtd, annotation, source, update, fresh=NodeIds("fresh_").fresh
        )
        invented = result.node_set - source.node_set - update.node_set
        assert invented
        assert all(str(node).startswith("fresh_") for node in invented)


class TestCorrectnessHelpers:
    def test_side_effect_free_detects_violation(self, setup):
        dtd, annotation, source, update = setup
        # a propagation for the *identity* update is not one for S0
        identity = EditScript.phantom(annotation.view(source))
        wrong = propagate(dtd, annotation, source, identity)
        assert is_schema_compliant(dtd, wrong)
        assert not is_side_effect_free(annotation, update, wrong)
        assert not verify_propagation(dtd, annotation, source, update, wrong)
