"""Theorem 5 (existence) and Theorem 6 (tractability) on random workloads.

Every valid view update must have a schema-compliant, side-effect-free
propagation; the seeded sweep below exercises the full random pipeline
(random DTD → random source → random annotation → random update →
propagate → verify) and requires a 100 % success rate.
"""

import random

import pytest

from repro.core import (
    PreferenceChooser,
    propagate,
    propagation_graphs,
    verify_propagation,
)
from repro.dtd import view_dtd
from repro.generators import (
    random_annotation,
    random_dtd,
    random_tree,
    random_view_update,
)


def pipeline(seed: int, n_labels: int = 5, size_hint: int = 14, n_ops: int = 3):
    rng = random.Random(seed)
    dtd = random_dtd(rng, n_labels)
    annotation = random_annotation(rng, dtd, hide_probability=0.3)
    source = random_tree(dtd, rng, root_label="l0", size_hint=size_hint)
    update = random_view_update(rng, dtd, annotation, source, n_ops=n_ops)
    return dtd, annotation, source, update


class TestTheorem5Existence:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_updates_always_propagate(self, seed):
        dtd, annotation, source, update = pipeline(seed)
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)

    @pytest.mark.parametrize("seed", range(40, 55))
    def test_larger_documents(self, seed):
        dtd, annotation, source, update = pipeline(seed, n_labels=6, size_hint=40)
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)

    @pytest.mark.parametrize("seed", range(55, 65))
    def test_heavy_hiding(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, 5)
        annotation = random_annotation(rng, dtd, hide_probability=0.6)
        source = random_tree(dtd, rng, root_label="l0", size_hint=18)
        update = random_view_update(rng, dtd, annotation, source, n_ops=4)
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)


class TestOptimality:
    @pytest.mark.parametrize("seed", range(20))
    def test_propagation_cost_equals_graph_optimum(self, seed):
        dtd, annotation, source, update = pipeline(seed)
        collection = propagation_graphs(dtd, annotation, source, update)
        script = collection.build_script(PreferenceChooser())
        assert script.cost == collection.min_cost()

    @pytest.mark.parametrize("seed", range(10))
    def test_update_cost_lower_bounds_propagation(self, seed):
        """A propagation must do at least the update's visible work."""
        dtd, annotation, source, update = pipeline(seed)
        script = propagate(dtd, annotation, source, update)
        assert script.cost >= update.cost


class TestRandomGenerators:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_dtd_satisfiable_and_sized(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, 6)
        assert dtd.satisfiable_symbols() == dtd.alphabet

    @pytest.mark.parametrize("seed", range(15))
    def test_random_tree_valid(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, 5)
        tree = random_tree(dtd, rng, root_label="l0", size_hint=25)
        assert dtd.validates(tree)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_update_is_valid_view_update(self, seed):
        from repro.core import validate_view_update

        dtd, annotation, source, update = pipeline(seed)
        validate_view_update(dtd, annotation, source, update)
        vdtd = view_dtd(dtd, annotation)
        assert vdtd.validates(update.output_tree)

    def test_random_trees_are_diverse(self):
        from repro.dtd import DTD

        rng = random.Random(1)
        dtd = DTD({"r": "(a|b)+,c?"})  # genuine branching at every step
        shapes = {
            random_tree(dtd, rng, root_label="r", size_hint=8).shape()
            for _ in range(20)
        }
        assert len(shapes) >= 3
