"""Point-in-time recovery: ``recover(upto_seq=N)`` and ``time_travel``.

The satellite edge cases the PR pins down: replay to seq 0, to a seq
inside a compacted prefix (typed :class:`~repro.errors.RecoveryError`),
and to the exact snapshot boundary — plus the general property that
``upto_seq=k`` reproduces the in-memory document after serving exactly
``k`` updates, byte for byte.
"""

import random

import pytest

from repro import ViewEngine
from repro.errors import RecoveryError, StoreError
from repro.generators.updates import random_view_update
from repro.store import DocumentStore
from repro.xmltree import tree_to_xml


def _served_states(store, doc_id, workload, steps, seed=29):
    """Serve *steps* random updates; returns states[k] = the document
    after k acknowledged records."""
    rng = random.Random(seed)
    engine = ViewEngine(workload.dtd, workload.annotation)
    states = [workload.source]
    with store.open_session(doc_id, engine=engine) as session:
        for _ in range(steps):
            update = random_view_update(
                rng, workload.dtd, workload.annotation, session.source, n_ops=2
            )
            session.propagate(update)
            states.append(session.source)
    return states


def test_upto_reproduces_every_prefix(stored_doc):
    store, doc_id, workload = stored_doc
    states = _served_states(store, doc_id, workload, steps=4)
    for k, expected in enumerate(states):
        recovered = store.recover(doc_id, upto_seq=k)
        assert recovered.last_seq == k
        assert recovered.tree.to_term() == expected.to_term()
        assert tree_to_xml(recovered.tree) == tree_to_xml(expected)


def test_upto_zero_is_the_genesis_document(stored_doc):
    store, doc_id, workload = stored_doc
    _served_states(store, doc_id, workload, steps=3)
    recovered = store.recover(doc_id, upto_seq=0)
    assert recovered.last_seq == 0
    assert recovered.snapshot_seq == 0
    assert recovered.replayed == 0
    assert recovered.tree.to_term() == workload.source.to_term()


def test_upto_exact_snapshot_boundary_replays_nothing(stored_doc):
    store, doc_id, workload = stored_doc
    _served_states(store, doc_id, workload, steps=4)
    boundary = store.compact(doc_id)
    assert boundary == 4
    recovered = store.recover(doc_id, upto_seq=boundary)
    assert recovered.snapshot_seq == boundary
    assert recovered.replayed == 0
    assert recovered.last_seq == boundary


def test_upto_inside_compacted_prefix_raises_typed_error(tmp_path, workload):
    store = DocumentStore.init(tmp_path / "s", keep_snapshots=1)
    store.put("doc", workload.source, workload.dtd, workload.annotation)
    _served_states(store, "doc", workload, steps=4)
    store.compact("doc")  # keep_snapshots=1: only the seq-4 snapshot survives
    # seqs 0..3 predate the only retained snapshot and their records are
    # trimmed; that history is gone and recovery must say so, typed.
    for target in (0, 1, 3):
        with pytest.raises(RecoveryError, match="compacted prefix"):
            store.recover("doc", upto_seq=target)
    # the boundary itself (and past it) stays recoverable
    assert store.recover("doc", upto_seq=4).last_seq == 4


def test_upto_past_the_log_head_raises(stored_doc):
    store, doc_id, workload = stored_doc
    _served_states(store, doc_id, workload, steps=2)
    with pytest.raises(RecoveryError, match="only reaches"):
        store.recover(doc_id, upto_seq=3)


def test_upto_negative_is_refused(stored_doc):
    store, doc_id, _ = stored_doc
    with pytest.raises(StoreError, match="sequence number"):
        store.recover(doc_id, upto_seq=-1)


def test_upto_before_oldest_retained_snapshot_with_records(tmp_path, workload):
    """With keep_snapshots=2 the genesis snapshot survives one
    compaction, so every prefix is still reachable — including targets
    between the two retained snapshots."""
    store = DocumentStore.init(tmp_path / "s", keep_snapshots=2)
    store.put("doc", workload.source, workload.dtd, workload.annotation)
    states = _served_states(store, "doc", workload, steps=4)
    store.compact("doc")  # snapshots {0, 4}; log still starts after 0
    for k, expected in enumerate(states):
        recovered = store.recover("doc", upto_seq=k)
        assert recovered.tree.to_term() == expected.to_term(), f"seq {k}"


def test_time_travel_serves_source_and_view(stored_doc):
    store, doc_id, workload = stored_doc
    states = _served_states(store, doc_id, workload, steps=3)
    for k, expected in enumerate(states):
        shot = store.time_travel(doc_id, k)
        assert shot.seq == k
        assert shot.tree.to_term() == expected.to_term()
        assert (
            tree_to_xml(shot.view)
            == tree_to_xml(workload.annotation.view(expected))
        )


def test_time_travel_does_not_repair_the_log(stored_doc):
    """Time travel is a read: a torn tail must be left for a real
    recovery to truncate."""
    store, doc_id, workload = stored_doc
    _served_states(store, doc_id, workload, steps=2)
    wal = store.root / "docs" / doc_id / "wal.log"
    torn = wal.read_bytes() + b"R 3 999 1\nhalf a rec"
    wal.write_bytes(torn)
    shot = store.time_travel(doc_id, 1)
    assert shot.seq == 1
    assert wal.read_bytes() == torn  # untouched
    # a repairing recovery still truncates it afterwards
    recovered = store.recover(doc_id)
    assert recovered.truncated_tail
    assert wal.read_bytes() != torn
