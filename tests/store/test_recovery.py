"""Recovery edge cases: empty logs, torn tails, snapshots ahead of the
log, schema mismatches on open, external replacement + rebase."""

import random

import pytest

from repro import DTD, Annotation, ViewEngine
from repro.errors import (
    RecoveryError,
    StaleSessionError,
    StoreSchemaMismatchError,
    WALCorruptError,
)
from repro.generators.updates import random_view_update
from repro.store import DocumentStore, create_wal, scan_wal
from repro.store.snapshot import list_snapshots


def _wal(store, doc_id):
    return store.root / "docs" / doc_id / "wal.log"


def _advance(store, doc_id, workload, n=1, seed=23):
    """Serve *n* random updates durably; returns the final tree."""
    rng = random.Random(seed)
    with store.open_session(doc_id) as session:
        for _ in range(n):
            update = random_view_update(
                rng, workload.dtd, workload.annotation, session.source, n_ops=2
            )
            session.propagate(update)
        return session.source


class TestEmptyWal:
    def test_fresh_document_recovers_to_genesis(self, stored_doc):
        store, doc_id, workload = stored_doc
        recovered = store.recover(doc_id)
        assert recovered.tree == workload.source
        assert recovered.snapshot_seq == 0
        assert recovered.last_seq == 0
        assert recovered.replayed == 0
        assert not recovered.truncated_tail

    def test_empty_wal_after_compaction(self, tmp_path, workload):
        from repro.store import DocumentStore

        store = DocumentStore.init(tmp_path / "s", keep_snapshots=1)
        store.put("doc", workload.source, workload.dtd, workload.annotation)
        final = _advance(store, "doc", workload, n=2)
        store.compact("doc")  # single retained snapshot → log fully trimmed
        assert scan_wal(_wal(store, "doc")).records == ()
        recovered = store.recover("doc")
        assert recovered.tree == final
        assert recovered.replayed == 0


class TestTornFinalRecord:
    def test_torn_tail_truncated_and_previous_state_restored(self, stored_doc):
        store, doc_id, workload = stored_doc
        _advance(store, doc_id, workload, n=2)
        after_one = None
        # rebuild what the state was after record 1 from a clean recover
        wal = _wal(store, doc_id)
        intact = wal.read_bytes()
        scan = scan_wal(wal)
        assert scan.last_seq == 2
        # cut into the middle of record 2
        record_starts = []
        pos = intact.find(b"\n") + 1
        for record in scan.records:
            record_starts.append(pos)
            header_end = intact.find(b"\n", pos)
            length = int(intact[pos:header_end].split()[2])
            pos = header_end + 1 + length + 1
        wal.write_bytes(intact[: record_starts[1] + 5])

        recovered = store.recover(doc_id)
        assert recovered.truncated_tail
        assert recovered.last_seq == 1
        assert recovered.replayed == 1
        # the file was repaired: a second recovery is clean
        again = store.recover(doc_id)
        assert not again.truncated_tail
        assert again.tree == recovered.tree

    def test_repair_false_leaves_the_tail(self, stored_doc):
        store, doc_id, workload = stored_doc
        _advance(store, doc_id, workload, n=1)
        wal = _wal(store, doc_id)
        wal.write_bytes(wal.read_bytes() + b"R 2 99 12345\nhalf")
        before = wal.read_bytes()
        recovered = store.recover(doc_id, repair=False)
        assert not recovered.truncated_tail  # reported as found, not cut
        assert wal.read_bytes() == before
        repaired = store.recover(doc_id)
        assert repaired.truncated_tail
        assert wal.read_bytes() != before


class TestSnapshotNewerThanLog:
    def test_snapshot_ahead_of_log_is_fatal(self, stored_doc):
        store, doc_id, workload = stored_doc
        _advance(store, doc_id, workload, n=2)
        store.compact(doc_id)  # snapshot at seq 2, log base 2
        # the log is then lost and recreated from scratch (base 0, empty)
        create_wal(_wal(store, doc_id), base_seq=0)
        with pytest.raises(RecoveryError, match="ahead of the log"):
            store.recover(doc_id)

    def test_log_trimmed_past_snapshot_is_fatal(self, stored_doc):
        store, doc_id, workload = stored_doc
        _advance(store, doc_id, workload, n=1)
        # pretend compaction trimmed the log to base 5 without a snapshot
        create_wal(_wal(store, doc_id), base_seq=5)
        with pytest.raises(RecoveryError, match="no usable snapshot"):
            store.recover(doc_id)

    def test_no_snapshots_at_all_is_fatal(self, stored_doc):
        store, doc_id, workload = stored_doc
        for _, path in list_snapshots(
            store.root / "docs" / doc_id / "snapshots"
        ):
            path.unlink()
        with pytest.raises(RecoveryError, match="no usable snapshot"):
            store.recover(doc_id)

    def test_corrupt_newest_snapshot_falls_back_when_log_covers_it(
        self, stored_doc
    ):
        """keep_snapshots=2 retention is real redundancy: compaction
        trims the log only past the *oldest* retained checkpoint, so when
        the newest snapshot rots, recovery falls back and replays more."""
        store, doc_id, workload = stored_doc
        final = _advance(store, doc_id, workload, n=2)
        with store.open_session(doc_id) as session:
            session.compact()  # snapshot at 2; genesis stays retained
        snapshots = list_snapshots(store.root / "docs" / doc_id / "snapshots")
        assert [seq for seq, _ in snapshots] == [0, 2]
        snapshots[-1][1].write_bytes(b"{broken")
        recovered = store.recover(doc_id)
        assert recovered.snapshot_seq == 0
        assert recovered.replayed == 2
        assert recovered.tree == final

    def test_corrupt_newest_snapshot_without_coverage_is_fatal(
        self, tmp_path, workload
    ):
        from repro.store import DocumentStore

        store = DocumentStore.init(tmp_path / "s", keep_snapshots=1)
        store.put("doc", workload.source, workload.dtd, workload.annotation)
        _advance(store, "doc", workload, n=1)
        store.compact("doc")  # only snapshot 1 retained, log trimmed to 1
        snapshots = list_snapshots(store.root / "docs" / "doc" / "snapshots")
        assert [seq for seq, _ in snapshots] == [1]
        snapshots[-1][1].write_bytes(b"{broken")
        with pytest.raises(RecoveryError, match="no usable snapshot"):
            store.recover("doc")


class TestInteriorCorruptionIsFatal:
    def test_flipped_byte_mid_log(self, stored_doc):
        store, doc_id, workload = stored_doc
        _advance(store, doc_id, workload, n=3)
        wal = _wal(store, doc_id)
        data = bytearray(wal.read_bytes())
        first_record = data.find(b"\nR ") + 1
        payload_start = data.find(b"\n", first_record) + 1
        data[payload_start] ^= 0xFF
        wal.write_bytes(bytes(data))
        with pytest.raises(WALCorruptError):
            store.recover(doc_id)


class TestSchemaMismatchOnOpen:
    def test_engine_for_other_schema_refused(self, stored_doc):
        store, doc_id, workload = stored_doc
        other = ViewEngine(
            DTD({"r": "a*", "a": ""}), Annotation.hiding(("r", "a"))
        )
        with pytest.raises(StoreSchemaMismatchError):
            store.open_session(doc_id, engine=other)

    def test_mismatch_is_a_stale_session_error(self, stored_doc):
        store, doc_id, workload = stored_doc
        other = ViewEngine(DTD({"r": "a*", "a": ""}), Annotation.identity())
        with pytest.raises(StaleSessionError):
            store.open_session(doc_id, engine=other)

    def test_matching_engine_accepted(self, stored_doc):
        store, doc_id, workload = stored_doc
        engine = ViewEngine(workload.dtd, workload.annotation)
        with store.open_session(doc_id, engine=engine) as session:
            assert session.engine is engine

    def test_tampered_schema_files_detected(self, stored_doc):
        store, doc_id, workload = stored_doc
        ann_file = store.root / "docs" / doc_id / "schema.ann"
        ann_file.write_text("default visible\n")  # hides nothing anymore
        with pytest.raises(StoreSchemaMismatchError, match="edited after"):
            store.open_session(doc_id)

    def test_snapshot_under_wrong_schema_skipped(self, stored_doc):
        store, doc_id, workload = stored_doc
        # rewrite the genesis snapshot under a lying schema hash
        from repro.store import write_snapshot

        directory = store.root / "docs" / doc_id / "snapshots"
        write_snapshot(directory, workload.source, seq=0, schema_hash="lie")
        with pytest.raises(RecoveryError, match="no usable snapshot"):
            store.recover(doc_id)


class TestExternalReplacementAndRebase:
    def test_reopen_after_external_compaction(self, stored_doc):
        """A session closed, the document compacted elsewhere, a new
        session opened: serving continues from the exact same state."""
        store, doc_id, workload = stored_doc
        final = _advance(store, doc_id, workload, n=2)
        store.compact(doc_id)  # 'external' maintenance between sessions
        with store.open_session(doc_id) as session:
            assert session.source == final
            assert session.recovered.replayed == 0

    def test_rebase_follows_an_externally_replaced_tree(self, stored_doc):
        """`rebase()` is the session-level answer to 'the tree changed
        under me': after an overwrite-put, a plain session rebased onto
        the recovered tree serves byte-identically to a cold engine."""
        store, doc_id, workload = stored_doc
        engine = ViewEngine(workload.dtd, workload.annotation)
        session = engine.session(workload.source)
        session.propagate(workload.update)

        # the stored document is replaced wholesale behind the session
        store.put(
            doc_id,
            workload.source,
            workload.dtd,
            workload.annotation,
            overwrite=True,
        )
        replaced = store.load(doc_id)
        with pytest.raises(StaleSessionError):
            session.propagate(workload.update, source=replaced)
        session.rebase(replaced)
        script = session.propagate(workload.update)
        cold = ViewEngine(workload.dtd, workload.annotation).propagate(
            workload.source, workload.update
        )
        assert script.to_term() == cold.to_term()
