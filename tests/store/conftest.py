"""Mark every test under ``tests/store`` with the ``store`` marker (so CI
can run the durability suite with ``-m store``) and share workload
fixtures."""

import pathlib

import pytest

from repro.generators.workloads import running_example

_HERE = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        path = getattr(item, "path", None) or getattr(item, "fspath", None)
        if path is not None and _HERE in pathlib.Path(str(path)).parents:
            item.add_marker(pytest.mark.store)


@pytest.fixture
def workload():
    """The paper's running example, 4 groups — small but non-trivial."""
    return running_example(4)


@pytest.fixture
def store(tmp_path):
    from repro.store import DocumentStore

    return DocumentStore.init(tmp_path / "store")


@pytest.fixture
def stored_doc(store, workload):
    """A freshly ``put`` document; returns (store, doc_id, workload)."""
    store.put("doc", workload.source, workload.dtd, workload.annotation)
    return store, "doc", workload
