"""Per-document write leases: acquisition, fencing, release, stickiness.

The PR-3 two-writer guard was open-time only; these tests pin the
durable version: every :class:`~repro.store.DurableSession` holds the
document's lease, verifies it before each journal append, and loses it
— typed :class:`~repro.errors.LeaseFencedError`, no record written —
the moment anyone else acquires it.
"""

import random

import pytest

from repro.errors import LeaseFencedError, StoreError
from repro.generators.updates import random_view_update
from repro.store import (
    Lease,
    acquire_lease,
    lease_path,
    read_lease,
    release_lease,
    verify_lease,
)


def _an_update(workload, source, seed=5):
    return random_view_update(
        random.Random(seed), workload.dtd, workload.annotation, source, n_ops=2
    )


class TestLeaseFile:
    def test_missing_file_reads_as_never_acquired(self, tmp_path):
        lease = read_lease(tmp_path / "lease.json")
        assert lease == Lease(epoch=0, owner=None)
        assert not lease.held

    def test_acquire_bumps_epoch_monotonically(self, tmp_path):
        path = tmp_path / "lease.json"
        first = acquire_lease(path, "alice")
        second = acquire_lease(path, "bob")
        assert (first.epoch, second.epoch) == (1, 2)
        assert read_lease(path) == second

    def test_verify_passes_for_holder_and_fences_the_loser(self, tmp_path):
        path = tmp_path / "lease.json"
        mine = acquire_lease(path, "alice")
        verify_lease(path, mine)  # no raise
        acquire_lease(path, "bob")
        with pytest.raises(LeaseFencedError, match="lease lost"):
            verify_lease(path, mine)

    def test_release_is_conditional_on_still_holding(self, tmp_path):
        path = tmp_path / "lease.json"
        mine = acquire_lease(path, "alice")
        assert release_lease(path, mine)
        assert read_lease(path) == Lease(epoch=1, owner=None)
        # a stale release after a takeover must not clobber the new holder
        mine = acquire_lease(path, "alice")
        theirs = acquire_lease(path, "bob")
        assert not release_lease(path, mine)
        assert read_lease(path) == theirs

    def test_sticky_fence_refuses_ordinary_acquisition(self, tmp_path):
        path = tmp_path / "lease.json"
        acquire_lease(path, "promoted:standby", fence=True)
        with pytest.raises(LeaseFencedError, match="promoted standby"):
            acquire_lease(path, "old-primary")
        # the deliberate operator reclaim still works
        reclaimed = acquire_lease(path, "operator", force=True)
        assert reclaimed.epoch == 2 and not reclaimed.fenced

    def test_unreadable_lease_file_is_an_error(self, tmp_path):
        path = tmp_path / "lease.json"
        path.write_text("not json at all")
        with pytest.raises(StoreError, match="unreadable lease"):
            read_lease(path)
        path.write_text('{"epoch": "seven"}')
        with pytest.raises(StoreError):
            read_lease(path)


class TestDurableSessionFencing:
    def test_open_acquires_and_close_releases(self, stored_doc):
        store, doc_id, _ = stored_doc
        path = lease_path(store.root / "docs" / doc_id)
        with store.open_session(doc_id) as session:
            held = read_lease(path)
            assert held.held and held.epoch == 1
            assert session.lease == held
        after = read_lease(path)
        assert not after.held and after.epoch == 1

    def test_second_open_fences_the_first_before_any_append(self, stored_doc):
        store, doc_id, workload = stored_doc
        first = store.open_session(doc_id)
        second = store.open_session(doc_id)
        update = _an_update(workload, first.source)
        with pytest.raises(LeaseFencedError):
            first.propagate(update)
        # nothing was journalled by the fenced writer; the new holder
        # serves from the same state the first one saw
        assert second.last_seq == first.recovered.last_seq
        second.propagate(update)
        assert second.last_seq == first.recovered.last_seq + 1
        second.close()

    def test_fenced_compact_is_refused(self, stored_doc):
        store, doc_id, _ = stored_doc
        first = store.open_session(doc_id)
        store.open_session(doc_id).close()
        with pytest.raises(LeaseFencedError):
            first.compact()

    def test_stats_surface_the_lease(self, stored_doc):
        store, doc_id, _ = stored_doc
        with store.open_session(doc_id) as session:
            assert session.stats["lease_epoch"] == 1
            payload = store.stats(doc_id)
            assert payload["lease"]["epoch"] == 1
            assert payload["lease"]["owner"] == session.lease.owner
