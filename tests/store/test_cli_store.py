"""The ``repro-xml store …`` and ``repro-xml stats`` subcommands: the
full init → put → propagate ×N → kill → recover → verify round trip a
deployment would script."""

import json

import pytest

from repro.cli import main
from repro.errors import WALCorruptError, exit_code
from repro.store import DocumentStore, scan_wal

DTD_TEXT = """
<!ELEMENT r (a,(b|c),d)*>
<!ELEMENT d ((a|b),c)*>
"""

ANNOTATION_TEXT = """
hide r b
hide r c
hide d a
hide d b
"""

DOC_XML = """
<r id="n0">
  <a id="n1"/><b id="n2"/>
  <d id="n3"><a id="n7"/><c id="n8"/></d>
  <a id="n4"/><c id="n5"/>
  <d id="n6"><b id="n9"/><c id="n10"/></d>
</r>
"""

UPDATE_TERM = (
    "Nop.r#n0(Del.a#n1, Del.d#n3(Del.c#n8), Nop.a#n4, "
    "Ins.d#n11(Ins.c#n13, Ins.c#n14), Ins.a#n12, "
    "Nop.d#n6(Nop.c#n10, Ins.c#n15))"
)


@pytest.fixture
def files(tmp_path):
    dtd = tmp_path / "schema.dtd"
    dtd.write_text(DTD_TEXT)
    annotation = tmp_path / "policy.ann"
    annotation.write_text(ANNOTATION_TEXT)
    doc = tmp_path / "doc.xml"
    doc.write_text(DOC_XML)
    update = tmp_path / "update.term"
    update.write_text(UPDATE_TERM)
    return tmp_path, dtd, annotation, doc, update


@pytest.fixture
def populated(files):
    tmp_path, dtd, annotation, doc, update = files
    root = tmp_path / "st"
    assert main(["store", "init", "--root", str(root)]) == 0
    assert (
        main(
            [
                "store", "put", "--root", str(root), "--id", "demo",
                "--dtd", str(dtd), "--annotation", str(annotation),
                "--doc", str(doc),
            ]
        )
        == 0
    )
    return root, update


class TestStoreCli:
    def test_init_put_ls(self, populated, capsys):
        root, _ = populated
        assert main(["store", "ls", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "last_seq=0" in out

    def test_propagate_logs_and_emits_document(self, populated, capsys):
        root, update = populated
        assert (
            main(
                [
                    "store", "propagate", "--root", str(root), "--id", "demo",
                    "--update", str(update), "--fsync", "batch",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert 'id="n11"' in captured.out
        assert "wal seq 1" in captured.err
        assert scan_wal(root / "docs" / "demo" / "wal.log").last_seq == 1

    def test_full_round_trip_with_kill(self, populated, capsys):
        """init → propagate ×2 → kill (torn tail) → recover → the view is
        byte-identical to what the store served before the crash."""
        root, update = populated
        assert (
            main(
                [
                    "store", "propagate", "--root", str(root), "--id", "demo",
                    "--update", str(update),
                ]
            )
            == 0
        )
        capsys.readouterr()
        served = DocumentStore(root).load("demo")

        # the crash: a half-written record at the log tail
        wal = root / "docs" / "demo" / "wal.log"
        wal.write_bytes(wal.read_bytes() + b"R 2 999 1\nhalf a record")

        out = root / "recovered.xml"
        assert (
            main(
                [
                    "store", "recover", "--root", str(root), "--id", "demo",
                    "--out", str(out),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "torn tail truncated" in err
        from repro.xmltree import tree_from_xml, tree_to_xml

        assert tree_from_xml(out.read_text()) == served
        assert out.read_text().strip() == tree_to_xml(served).strip()

    def test_recover_view(self, populated, capsys):
        root, update = populated
        main(
            [
                "store", "propagate", "--root", str(root), "--id", "demo",
                "--update", str(update),
            ]
        )
        capsys.readouterr()
        assert (
            main(["store", "recover", "--root", str(root), "--id", "demo", "--view"])
            == 0
        )
        out = capsys.readouterr().out
        assert "<b" not in out  # hidden labels never reach the view

    def test_compact_after_flag(self, populated, capsys):
        root, update = populated
        assert (
            main(
                [
                    "store", "propagate", "--root", str(root), "--id", "demo",
                    "--update", str(update), "--compact-after",
                ]
            )
            == 0
        )
        assert "compacted at seq 1" in capsys.readouterr().err
        stats = DocumentStore(root).stats("demo")
        # genesis stays retained (keep_snapshots=2), so the log keeps
        # covering it; recovery starts from the new snapshot regardless
        assert stats["snapshots"] == [0, 1]
        assert DocumentStore(root).recover("demo").replayed == 0

    def test_store_stats_json(self, populated, capsys):
        root, _ = populated
        assert main(["store", "stats", "--root", str(root), "--id", "demo"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["doc_id"] == "demo"
        assert payload["wal_last_seq"] == 0
        assert main(["store", "stats", "--root", str(root)]) == 0
        whole = json.loads(capsys.readouterr().out)
        assert [doc["doc_id"] for doc in whole["documents"]] == ["demo"]

    def test_corrupt_store_reports_error(self, populated, capsys):
        root, _ = populated
        wal = root / "docs" / "demo" / "wal.log"
        wal.write_bytes(b"not a wal at all\n")
        assert main(
            ["store", "recover", "--root", str(root), "--id", "demo"]
        ) == exit_code(WALCorruptError())
        assert "error[wal_corrupt]:" in capsys.readouterr().err


class TestStatsCli:
    def test_registry_stats_json(self, files, capsys):
        tmp_path, dtd, annotation, doc, update = files
        # a propagate warms the default registry in this process
        main(
            [
                "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
                "--doc", str(doc), "--update", str(update),
            ]
        )
        capsys.readouterr()
        assert main(["stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "registry" in payload and "engines" in payload
        entry = next(
            engine for engine in payload["engines"] if engine["propagations"]
        )
        assert set(entry) >= {"schema_hash", "factory", "propagations"}

    def test_compact_flag_single_line(self, capsys):
        assert main(["stats", "--compact"]) == 0
        out = capsys.readouterr().out.strip()
        assert "\n" not in out
        json.loads(out)
