"""DocumentStore and DurableSession: layout, put, serving, compaction,
snapshots, stats."""

import json

import pytest

from repro import ViewEngine
from repro.errors import (
    DocumentExistsError,
    SnapshotCorruptError,
    StoreError,
    UnknownDocumentError,
)
from repro.registry import EngineRegistry, schema_fingerprint
from repro.store import DocumentStore, read_snapshot, scan_wal, write_snapshot
from repro.store.snapshot import list_snapshots, snapshot_path
from repro.xmltree import parse_term


class TestStoreLayout:
    def test_init_creates_marker(self, tmp_path):
        store = DocumentStore.init(tmp_path / "s")
        assert (tmp_path / "s" / "store.json").is_file()
        assert store.documents() == []

    def test_opening_a_non_store_fails(self, tmp_path):
        with pytest.raises(StoreError, match="not a document store"):
            DocumentStore(tmp_path)

    def test_reopening_an_existing_store(self, tmp_path):
        DocumentStore.init(tmp_path / "s")
        store = DocumentStore(tmp_path / "s")
        assert store.documents() == []

    def test_future_format_is_refused(self, tmp_path):
        DocumentStore.init(tmp_path / "s")
        (tmp_path / "s" / "store.json").write_text('{"format": 99}')
        with pytest.raises(StoreError, match="format"):
            DocumentStore(tmp_path / "s")

    def test_bad_fsync_policy_refused(self, tmp_path):
        with pytest.raises(StoreError, match="fsync policy"):
            DocumentStore.init(tmp_path / "s", fsync="mostly")


class TestPut:
    def test_put_creates_genesis_state(self, stored_doc):
        store, doc_id, workload = stored_doc
        assert store.exists(doc_id)
        assert store.documents() == [doc_id]
        meta = store.meta(doc_id)
        assert meta["schema"] == schema_fingerprint(
            workload.dtd, workload.annotation
        )
        directory = store.root / "docs" / doc_id
        assert scan_wal(directory / "wal.log").last_seq == 0
        assert [seq for seq, _ in list_snapshots(directory / "snapshots")] == [0]

    def test_schema_files_parse_back(self, stored_doc):
        store, doc_id, workload = stored_doc
        dtd, annotation = store.schema(doc_id)
        assert schema_fingerprint(dtd, annotation) == schema_fingerprint(
            workload.dtd, workload.annotation
        )

    def test_duplicate_put_refused(self, stored_doc):
        store, doc_id, workload = stored_doc
        with pytest.raises(DocumentExistsError):
            store.put(doc_id, workload.source, workload.dtd, workload.annotation)

    def test_overwrite_discards_history(self, stored_doc):
        store, doc_id, workload = stored_doc
        with store.open_session(doc_id) as session:
            session.propagate(workload.update)
        store.put(
            doc_id,
            workload.source,
            workload.dtd,
            workload.annotation,
            overwrite=True,
        )
        recovered = store.recover(doc_id)
        assert recovered.last_seq == 0
        assert recovered.tree == workload.source

    def test_invalid_source_refused(self, store, workload):
        bad = parse_term("r#x(a#y)")  # not in L(D)
        with pytest.raises(Exception):
            store.put("bad", bad, workload.dtd, workload.annotation)
        assert not store.exists("bad")

    @pytest.mark.parametrize("doc_id", ["", "../evil", "a b", ".hidden", "x" * 200])
    def test_unsafe_doc_ids_refused(self, store, workload, doc_id):
        with pytest.raises(StoreError, match="filesystem-safe"):
            store.put(doc_id, workload.source, workload.dtd, workload.annotation)

    def test_unknown_document_errors(self, store):
        with pytest.raises(UnknownDocumentError):
            store.recover("ghost")
        with pytest.raises(UnknownDocumentError):
            store.open_session("ghost")
        with pytest.raises(UnknownDocumentError):
            store.stats("ghost")


class TestDurableSession:
    def test_propagation_matches_plain_session(self, stored_doc):
        store, doc_id, workload = stored_doc
        engine = ViewEngine(workload.dtd, workload.annotation)
        plain = engine.session(workload.source)
        expected = plain.propagate(workload.update)
        with store.open_session(doc_id) as session:
            script = session.propagate(workload.update)
        assert script.to_term() == expected.to_term()
        assert store.load(doc_id) == plain.source

    def test_wal_written_before_advance(self, stored_doc):
        store, doc_id, workload = stored_doc
        with store.open_session(doc_id) as session:
            before = session.source
            session.propagate(workload.update)
            # the record is already durable *and* the session advanced
            assert session.last_seq == 1
            assert session.source != before
        recovered = store.recover(doc_id)
        assert recovered.replayed == 1
        assert recovered.tree == store.load(doc_id)

    def test_preview_does_not_journal(self, stored_doc):
        store, doc_id, workload = stored_doc
        with store.open_session(doc_id) as session:
            session.propagate(workload.update, advance=False)
            assert session.last_seq == 0
            assert session.source == workload.source
        assert store.recover(doc_id).last_seq == 0

    def test_failed_journal_leaves_session_unmoved(self, stored_doc):
        store, doc_id, workload = stored_doc
        session = store.open_session(doc_id)
        try:
            session._writer.close()  # simulate a dead log device
            with pytest.raises(ValueError):
                session.propagate(workload.update)
            assert session.source == workload.source  # never advanced
            assert session.session.stats.updates_served == 0
        finally:
            pass
        assert store.recover(doc_id).last_seq == 0

    def test_concurrent_append_during_open_refused(self, stored_doc):
        """Opening a session re-checks the log against what recovery saw:
        a record appended in between means another writer is live."""
        store, doc_id, workload = stored_doc
        from repro.store.store import DurableSession

        first = store.open_session(doc_id)
        try:
            recovered = store.recover(doc_id)  # sees the log at seq 0
            first.propagate(workload.update)  # ...and then it moves
            engine = first.engine
        finally:
            first.close()
        with pytest.raises(StoreError, match="another session"):
            DurableSession(
                store, engine, recovered, fsync="off", batch_interval=8
            )

    def test_fsync_policy_propagates_from_store(self, tmp_path, workload):
        store = DocumentStore.init(tmp_path / "s", fsync="batch", batch_interval=2)
        store.put("d", workload.source, workload.dtd, workload.annotation)
        with store.open_session("d") as session:
            assert session._writer.policy == "batch"
        with store.open_session("d", fsync="off") as session:
            assert session._writer.policy == "off"

    def test_stats_payload_is_json_serializable(self, stored_doc):
        store, doc_id, workload = stored_doc
        with store.open_session(doc_id) as session:
            session.propagate(workload.update)
            payload = session.stats
        json.dumps(payload)
        assert payload["last_seq"] == 1
        assert payload["session"]["updates_served"] == 1
        json.dumps(store.stats())
        json.dumps(store.stats(doc_id))

    def test_unjournalable_identifiers_refused_before_acknowledge(
        self, tmp_path, workload
    ):
        """XML allows node ids term notation cannot carry (spaces,
        commas); a propagation over such a document must fail at journal
        time — before acknowledgement — not at recovery time."""
        from repro.xmltree import tree_from_xml

        weird = tree_from_xml(
            '<r id="n 0"><a id="a,b"/><b id="n2"/>'
            '<d id="n3"><a id="n7"/><c id="n8"/></d>'
            '<a id="n4"/><c id="n5"/>'
            '<d id="n6"><b id="n9"/><c id="n10"/></d></r>'
        )
        store = DocumentStore.init(tmp_path / "s")
        store.put("w", weird, workload.dtd, workload.annotation)
        from repro.editing import UpdateBuilder

        with store.open_session("w") as session:
            builder = UpdateBuilder(
                session.view, forbidden_ids=session.source.nodes()
            )
            builder.delete("a,b")
            builder.delete("n3")
            with pytest.raises(StoreError, match="round trip|term-notation"):
                session.propagate(builder.script())
            # nothing acknowledged, nothing applied, nothing logged
            assert session.source == weird
            assert session.last_seq == 0
        assert store.recover("w").tree == weird

    def test_registry_reuse_across_opens(self, tmp_path, workload):
        registry = EngineRegistry(capacity=8)
        store = DocumentStore.init(tmp_path / "s", registry=registry)
        store.put("a", workload.source, workload.dtd, workload.annotation)
        store.put("b", workload.source, workload.dtd, workload.annotation)
        store.open_session("a").close()
        store.open_session("b").close()
        stats = registry.stats
        assert stats.misses == 1  # one schema, one compile
        assert stats.hits == 1


class TestCompaction:
    def test_compact_trims_log_and_keeps_state(self, stored_doc):
        store, doc_id, workload = stored_doc
        with store.open_session(doc_id) as session:
            session.propagate(workload.update)
            document = session.source
            seq = session.compact()
            assert seq == 1
        recovered = store.recover(doc_id)
        assert recovered.snapshot_seq == 1
        assert recovered.replayed == 0
        assert recovered.tree == document

    def test_session_keeps_serving_after_compact(self, stored_doc, workload):
        store, doc_id, _ = stored_doc
        from repro.generators.updates import random_view_update
        import random

        rng = random.Random(3)
        with store.open_session(doc_id) as session:
            session.propagate(workload.update)
            session.compact()
            update = random_view_update(
                rng, workload.dtd, workload.annotation, session.source, n_ops=2
            )
            session.propagate(update)
            assert session.last_seq == 2
            final = session.source
        recovered = store.recover(doc_id)
        assert recovered.snapshot_seq == 1 and recovered.replayed == 1
        assert recovered.tree == final

    def test_store_level_compact_is_engine_free(self, stored_doc):
        store, doc_id, workload = stored_doc
        with store.open_session(doc_id) as session:
            session.propagate(workload.update)
        assert store.compact(doc_id) == 1
        # default keep_snapshots=2 retains genesis as a fallback recovery
        # point, so the log keeps covering it; recovery itself starts
        # from the new snapshot and replays nothing
        stats = store.stats(doc_id)
        assert stats["snapshots"] == [0, 1]
        assert stats["wal_base_seq"] == 0 and stats["wal_records"] == 1
        assert store.recover(doc_id).replayed == 0

    def test_compact_with_single_retained_snapshot_empties_log(
        self, tmp_path, workload
    ):
        store = DocumentStore.init(tmp_path / "s", keep_snapshots=1)
        store.put("d", workload.source, workload.dtd, workload.annotation)
        with store.open_session("d") as session:
            session.propagate(workload.update)
        assert store.compact("d") == 1
        stats = store.stats("d")
        assert stats["snapshots"] == [1]
        assert stats["wal_base_seq"] == 1 and stats["wal_records"] == 0

    def test_old_snapshots_pruned(self, tmp_path, workload):
        store = DocumentStore.init(tmp_path / "s", keep_snapshots=2)
        store.put("d", workload.source, workload.dtd, workload.annotation)
        from repro.generators.updates import random_view_update
        import random

        rng = random.Random(11)
        with store.open_session("d") as session:
            for _ in range(3):
                update = random_view_update(
                    rng, workload.dtd, workload.annotation, session.source, n_ops=1
                )
                session.propagate(update)
                session.compact()
        seqs = store.stats("d")["snapshots"]
        assert len(seqs) <= 2
        assert seqs[-1] == 3
        # the log is trimmed only past checkpoints no longer retained
        assert store.stats("d")["wal_base_seq"] == seqs[0]


class TestSnapshots:
    def test_snapshot_round_trip(self, tmp_path, workload):
        path_dir = tmp_path / "snaps"
        write_snapshot(path_dir, workload.source, seq=7, schema_hash="abc")
        snapshot = read_snapshot(snapshot_path(path_dir, 7), schema_hash="abc")
        assert snapshot.seq == 7
        assert snapshot.tree == workload.source
        assert snapshot.tree.to_term() == workload.source.to_term()

    def test_schema_mismatch_detected(self, tmp_path, workload):
        path_dir = tmp_path / "snaps"
        write_snapshot(path_dir, workload.source, seq=0, schema_hash="abc")
        with pytest.raises(SnapshotCorruptError, match="schema"):
            read_snapshot(snapshot_path(path_dir, 0), schema_hash="other")

    def test_body_corruption_detected(self, tmp_path, workload):
        path_dir = tmp_path / "snaps"
        target = write_snapshot(path_dir, workload.source, seq=0, schema_hash="abc")
        data = bytearray(target.read_bytes())
        data[-10] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptError, match="checksum"):
            read_snapshot(target)

    def test_header_corruption_detected(self, tmp_path, workload):
        path_dir = tmp_path / "snaps"
        target = write_snapshot(path_dir, workload.source, seq=0, schema_hash="abc")
        data = target.read_bytes()
        target.write_bytes(b"garbage" + data)
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(target)
