"""Crash-recovery differential suite (the PR's acceptance criterion).

For generated (DTD, annotation, document, update-stream) workloads: run
the stream through a durable session, kill the store at an arbitrary
record boundary (simulated by truncating the log exactly where a crash
mid-append would leave it), recover, and demand a document — and
therefore a view — **byte-identical** to an uninterrupted in-memory
:class:`~repro.session.DocumentSession` run of the same prefix. Also
mid-record kills (which must fall back to the previous boundary) and a
compaction thrown into the middle of the stream.
"""

import random

import pytest

from repro import ViewEngine
from repro.generators.dtds import random_annotation, random_dtd
from repro.generators.trees import random_tree
from repro.generators.updates import random_view_update
from repro.store import DocumentStore, scan_wal


def _random_workload(seed, steps):
    """(dtd, annotation, source, updates, states): ``states[k]`` is the
    in-memory document after serving ``updates[:k]``."""
    rng = random.Random(seed)
    dtd = random_dtd(rng, n_labels=rng.randint(3, 5))
    annotation = random_annotation(rng, dtd)
    source = random_tree(dtd, rng, root_label="l0", size_hint=rng.randint(4, 12))
    engine = ViewEngine(dtd, annotation).warm_up()
    session = engine.session(source)
    updates, states = [], [source]
    for _ in range(steps):
        update = random_view_update(rng, dtd, annotation, session.source, n_ops=2)
        updates.append(update)
        session.propagate(update)
        states.append(session.source)
    return dtd, annotation, source, updates, states


def _record_boundaries(wal_path):
    """Byte offsets of every record boundary: after the header, after
    record 1, ..., after the last record."""
    data = wal_path.read_bytes()
    scan = scan_wal(wal_path)
    boundaries = [data.find(b"\n") + 1]
    pos = boundaries[0]
    for _ in scan.records:
        header_end = data.find(b"\n", pos)
        length = int(data[pos:header_end].split()[2])
        pos = header_end + 1 + length + 1
        boundaries.append(pos)
    return boundaries


@pytest.mark.parametrize("seed", [1, 7, 23, 91, 404])
def test_kill_at_every_record_boundary_recovers_prefix_exactly(tmp_path, seed):
    steps = 4
    dtd, annotation, source, updates, states = _random_workload(seed, steps)
    store = DocumentStore.init(tmp_path / "s", fsync="off")
    store.put("d", source, dtd, annotation)
    with store.open_session("d") as session:
        for update in updates:
            session.propagate(update)
    wal_path = store.root / "docs" / "d" / "wal.log"
    intact = wal_path.read_bytes()
    boundaries = _record_boundaries(wal_path)
    assert len(boundaries) == len(updates) + 1

    for k, boundary in enumerate(boundaries):
        wal_path.write_bytes(intact[:boundary])  # the crash point
        recovered = store.recover("d")
        expected = states[k]
        assert recovered.tree == expected, f"seed {seed}, boundary {k}"
        # byte-identical document and view
        assert recovered.tree.to_term() == expected.to_term()
        assert (
            annotation.view(recovered.tree).to_term()
            == annotation.view(expected).to_term()
        )
        wal_path.write_bytes(intact)  # resurrect for the next kill


@pytest.mark.parametrize("seed", [5, 77])
def test_kill_mid_record_falls_back_to_previous_boundary(tmp_path, seed):
    dtd, annotation, source, updates, states = _random_workload(seed, 3)
    store = DocumentStore.init(tmp_path / "s", fsync="off")
    store.put("d", source, dtd, annotation)
    with store.open_session("d") as session:
        for update in updates:
            session.propagate(update)
    wal_path = store.root / "docs" / "d" / "wal.log"
    intact = wal_path.read_bytes()
    boundaries = _record_boundaries(wal_path)

    rng = random.Random(seed)
    for k in range(len(updates)):
        lo, hi = boundaries[k], boundaries[k + 1]
        cut = rng.randrange(lo + 1, hi)  # strictly inside record k+1
        wal_path.write_bytes(intact[:cut])
        recovered = store.recover("d")
        assert recovered.truncated_tail
        assert recovered.tree.to_term() == states[k].to_term()
        wal_path.write_bytes(intact)


@pytest.mark.parametrize("seed", [13, 59])
def test_crash_after_mid_stream_compaction(tmp_path, seed):
    """A compaction halfway through the stream must not change what any
    later crash point recovers to (keep_snapshots=1 so the compaction
    genuinely trims the log)."""
    steps = 4
    dtd, annotation, source, updates, states = _random_workload(seed, steps)
    store = DocumentStore.init(tmp_path / "s", fsync="off", keep_snapshots=1)
    store.put("d", source, dtd, annotation)
    with store.open_session("d") as session:
        for index, update in enumerate(updates):
            session.propagate(update)
            if index == 1:
                session.compact()
    wal_path = store.root / "docs" / "d" / "wal.log"
    intact = wal_path.read_bytes()
    boundaries = _record_boundaries(wal_path)
    assert scan_wal(wal_path).base_seq == 2

    # crash points now reach states 2..4 (earlier ones are checkpointed)
    for k, boundary in enumerate(boundaries):
        wal_path.write_bytes(intact[:boundary])
        recovered = store.recover("d")
        assert recovered.tree.to_term() == states[2 + k].to_term()
        wal_path.write_bytes(intact)


def test_durable_scripts_equal_in_memory_scripts(tmp_path):
    """The journal must be an observer: scripts served durably are byte-
    identical to the in-memory session's (and to cold serving, by the
    existing property suite)."""
    dtd, annotation, source, updates, _ = _random_workload(321, 4)
    store = DocumentStore.init(tmp_path / "s")
    store.put("d", source, dtd, annotation)
    engine = ViewEngine(dtd, annotation)
    plain = engine.session(source)
    with store.open_session("d") as durable:
        for update in updates:
            assert (
                durable.propagate(update).to_term()
                == plain.propagate(update).to_term()
            )
        assert durable.source == plain.source
        assert durable.view == plain.view
