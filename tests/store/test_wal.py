"""The write-ahead log file format: appends, scans, torn tails,
interior corruption, fsync policies."""

import zlib

import pytest

from repro.errors import StoreError, WALCorruptError
from repro.store.wal import (
    WalWriter,
    create_wal,
    encode_record,
    scan_wal,
    truncate_torn_tail,
)


@pytest.fixture
def wal(tmp_path):
    path = tmp_path / "wal.log"
    create_wal(path, base_seq=0)
    return path


def _append_raw(path, *texts, start=1):
    with open(path, "ab") as handle:
        for offset, text in enumerate(texts):
            handle.write(encode_record(start + offset, text))


class TestFormat:
    def test_empty_log_scans_clean(self, wal):
        scan = scan_wal(wal)
        assert scan.base_seq == 0
        assert scan.records == ()
        assert scan.last_seq == 0
        assert scan.torn_at is None

    def test_appended_records_round_trip(self, wal):
        _append_raw(wal, "Nop.r#n0", "Nop.r#n0(Ins.a#n1)")
        scan = scan_wal(wal)
        assert [record.seq for record in scan.records] == [1, 2]
        assert scan.records[1].text == "Nop.r#n0(Ins.a#n1)"
        assert scan.last_seq == 2
        assert scan.torn_at is None

    def test_base_seq_survives(self, tmp_path):
        path = tmp_path / "wal.log"
        create_wal(path, base_seq=41)
        _append_raw(path, "Nop.r#n0", start=42)
        scan = scan_wal(path)
        assert scan.base_seq == 41
        assert scan.last_seq == 42

    def test_missing_header_is_fatal(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"not a wal\n")
        with pytest.raises(WALCorruptError, match="header"):
            scan_wal(path)

    def test_empty_file_is_fatal(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        with pytest.raises(WALCorruptError):
            scan_wal(path)


class TestTornTails:
    """Every prefix a crash mid-append can leave must scan as torn —
    never as corrupt, never as complete."""

    def test_every_partial_suffix_of_final_record_is_torn(self, wal):
        _append_raw(wal, "Nop.r#n0")
        intact = wal.read_bytes()
        record = encode_record(2, "Nop.r#n0(Ins.a#n1)")
        for cut in range(1, len(record)):
            wal.write_bytes(intact + record[:cut])
            scan = scan_wal(wal)
            assert scan.torn_at == len(intact), f"cut at {cut}"
            assert scan.last_seq == 1
            assert scan.end_offset == len(intact)

    def test_truncate_torn_tail_repairs(self, wal):
        _append_raw(wal, "Nop.r#n0")
        intact = wal.read_bytes()
        wal.write_bytes(intact + b"R 2 50 123\npartial")
        scan = scan_wal(wal)
        assert truncate_torn_tail(wal, scan)
        assert wal.read_bytes() == intact
        clean = scan_wal(wal)
        assert clean.torn_at is None and clean.last_seq == 1

    def test_truncate_is_noop_on_clean_log(self, wal):
        _append_raw(wal, "Nop.r#n0")
        scan = scan_wal(wal)
        assert not truncate_torn_tail(wal, scan)

    def test_corrupt_checksum_on_final_record_is_torn(self, wal):
        _append_raw(wal, "Nop.r#n0", "Nop.r#n0(Ins.a#n1)")
        data = bytearray(wal.read_bytes())
        data[-3] ^= 0xFF  # flip a payload byte of the last record
        wal.write_bytes(bytes(data))
        scan = scan_wal(wal)
        assert scan.torn_at is not None
        assert scan.last_seq == 1


class TestInteriorCorruption:
    def test_checksum_failure_before_tail_is_fatal(self, wal):
        _append_raw(wal, "Nop.r#n0", "Nop.r#n0(Ins.a#n1)")
        data = bytearray(wal.read_bytes())
        first_payload = data.find(b"Nop.r#n0")
        data[first_payload] ^= 0xFF
        wal.write_bytes(bytes(data))
        with pytest.raises(WALCorruptError, match="checksum"):
            scan_wal(wal)

    def test_malformed_header_with_data_after_is_fatal(self, wal):
        garbage = b"XX not a record\n"
        wal.write_bytes(wal.read_bytes() + garbage + encode_record(1, "Nop.r#n0"))
        with pytest.raises(WALCorruptError, match="malformed record header"):
            scan_wal(wal)

    def test_sequence_gap_is_fatal(self, wal):
        _append_raw(wal, "Nop.r#n0")
        with open(wal, "ab") as handle:
            handle.write(encode_record(3, "Nop.r#n0"))  # 2 went missing
        with pytest.raises(WALCorruptError, match="missing or reordered"):
            scan_wal(wal)

    def test_crc_collision_needs_matching_length(self, wal):
        # a record whose payload was swapped for different bytes with the
        # same declared length fails the checksum even at equal size
        record = encode_record(1, "Nop.r#n0")
        swapped = record.replace(b"Nop.r#n0", b"Del.r#n0")
        wal.write_bytes(wal.read_bytes() + swapped + encode_record(2, "Nop.r#n0"))
        with pytest.raises(WALCorruptError):
            scan_wal(wal)


class TestWalWriter:
    def test_append_assigns_sequential_numbers(self, wal):
        writer = WalWriter(wal, policy="off")
        assert writer.append("Nop.r#n0") == 1
        assert writer.append("Nop.r#n0") == 2
        writer.close()
        assert scan_wal(wal).last_seq == 2

    def test_opening_truncates_torn_tail(self, wal):
        _append_raw(wal, "Nop.r#n0")
        wal.write_bytes(wal.read_bytes() + b"R 2 9 1\nhalf")
        writer = WalWriter(wal, policy="off")
        assert writer.last_seq == 1
        assert writer.append("Nop.r#n0(Ins.a#n1)") == 2
        writer.close()
        assert [r.text for r in scan_wal(wal).records] == [
            "Nop.r#n0",
            "Nop.r#n0(Ins.a#n1)",
        ]

    def test_always_policy_syncs_every_append(self, wal):
        writer = WalWriter(wal, policy="always")
        writer.append("Nop.r#n0")
        writer.append("Nop.r#n0")
        assert writer.syncs == 2
        assert writer.pending == 0
        writer.close()

    def test_batch_policy_syncs_every_interval(self, wal):
        writer = WalWriter(wal, policy="batch", batch_interval=3)
        for _ in range(7):
            writer.append("Nop.r#n0")
        assert writer.syncs == 2  # at append 3 and 6
        assert writer.pending == 1
        writer.close()
        assert writer.syncs == 3  # close flushes the remainder

    def test_off_policy_never_syncs(self, wal):
        writer = WalWriter(wal, policy="off")
        for _ in range(5):
            writer.append("Nop.r#n0")
        writer.close()
        assert writer.syncs == 0
        assert scan_wal(wal).last_seq == 5  # still written, just not fsynced

    def test_unknown_policy_refused(self, wal):
        with pytest.raises(StoreError, match="fsync policy"):
            WalWriter(wal, policy="sometimes")

    def test_reopen_follows_a_rewritten_log(self, wal, tmp_path):
        writer = WalWriter(wal, policy="off")
        writer.append("Nop.r#n0")
        create_wal(wal, base_seq=7)  # compaction swaps a trimmed log in
        writer.reopen()
        assert writer.last_seq == 7
        assert writer.append("Nop.r#n0") == 8
        writer.close()
        scan = scan_wal(wal)
        assert scan.base_seq == 7 and scan.last_seq == 8


class TestEncodeRecord:
    def test_record_carries_crc_and_length(self):
        payload = "Nop.r#n0(Del.a#n1)".encode()
        record = encode_record(5, payload.decode())
        header, rest = record.split(b"\n", 1)
        assert header == f"R 5 {len(payload)} {zlib.crc32(payload)}".encode()
        assert rest == payload + b"\n"

    def test_unicode_payloads_round_trip(self, wal):
        text = "Nop.r#n0(Ins.ä#n1)"
        _append_raw(wal, text)
        assert scan_wal(wal).records[0].text == text
