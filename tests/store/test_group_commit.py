"""Group-commit WAL batching: coalesced fsyncs, unchanged durability.

Concurrent ``batch``-policy sessions sharing a store coordinator must
see their appends made durable by shared per-window flush passes — and
everything recovered afterwards must be byte-identical to plain
serving. Marked ``store`` like the rest of the durability suite.
"""

import threading
import time

import pytest

from repro.editing import EditScript
from repro.engine import ViewEngine
from repro.errors import StoreError
from repro.paperdata.figures import a0, d0
from repro.store import DocumentStore, GroupCommitCoordinator, WalWriter
from repro.store.wal import create_wal, scan_wal
from repro.xmltree import parse_term

pytestmark = pytest.mark.store


@pytest.fixture
def schema():
    return d0(), a0()


@pytest.fixture
def source():
    return parse_term(
        "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
    )


UPDATES = [
    "Nop.r#n0(Nop.a#n1, Nop.d#n3(Nop.c#n8), Nop.a#n4, "
    "Ins.d#u0(Ins.c#u1), Ins.a#u2, Nop.d#n6(Nop.c#n10))",
]


class TestCoordinator:
    def test_appends_coalesce_into_few_flushes(self, tmp_path):
        coordinator = GroupCommitCoordinator(window=0.02)
        writers = []
        for name in ("one", "two"):
            path = tmp_path / f"{name}.log"
            create_wal(path)
            writers.append(
                WalWriter(path, policy="batch", group_commit=coordinator)
            )
        for i in range(10):
            for writer in writers:
                writer.append(f"record-{i}")
        deadline = time.monotonic() + 5
        while any(w.pending for w in writers) and time.monotonic() < deadline:
            time.sleep(0.005)
        assert all(w.pending == 0 for w in writers)
        # 20 appends; flush passes are per-window, so far fewer fsyncs
        # than under the per-writer interval policy
        assert coordinator.scheduled == 20
        assert 1 <= coordinator.flushes < 10
        for writer in writers:
            assert writer.syncs < writer.appended
            assert len(scan_wal(writer.path).records) == 10
            writer.close()
        coordinator.close()

    def test_close_flushes_remaining(self, tmp_path):
        coordinator = GroupCommitCoordinator(window=60.0)  # never fires alone
        path = tmp_path / "wal.log"
        create_wal(path)
        writer = WalWriter(path, policy="batch", group_commit=coordinator)
        writer.append("only-record")
        coordinator.close()
        assert writer.pending == 0
        assert len(scan_wal(path).records) == 1
        # a closed coordinator refuses new work ...
        assert coordinator.schedule(writer) is False
        # ... and the writer falls back to its own interval fsyncs
        syncs_before = writer.syncs
        for index in range(writer._interval):
            writer.append(f"fallback-{index}")
        assert writer.syncs == syncs_before + 1
        assert writer.pending == 0
        writer.close()
        assert len(scan_wal(path).records) == 1 + writer._interval

    def test_window_must_be_positive(self):
        with pytest.raises(StoreError):
            GroupCommitCoordinator(window=0)


class TestGroupCommittedStore:
    def test_concurrent_sessions_serve_and_recover(
        self, tmp_path, schema, source
    ):
        dtd, annotation = schema
        engine = ViewEngine(dtd, annotation).warm_up()
        store = DocumentStore.init(
            tmp_path / "store",
            fsync="batch",
            group_commit=True,
            group_window=0.005,
        )
        doc_ids = [f"doc-{i}" for i in range(3)]
        for doc_id in doc_ids:
            store.put(doc_id, source, dtd, annotation)

        expected = engine.propagate(
            source, EditScript.parse(UPDATES[0]), memo=False
        ).output_tree
        errors: list = []

        def serve(doc_id: str) -> None:
            try:
                with store.open_session(doc_id, engine=engine) as session:
                    for text in UPDATES:
                        session.propagate(EditScript.parse(text))
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [
            threading.Thread(target=serve, args=(doc_id,)) for doc_id in doc_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for doc_id in doc_ids:
            assert store.load(doc_id) == expected
        stats = store.stats()
        assert stats["group_commit"]["appends_coalesced"] == len(doc_ids)
        store.close()

    def test_stats_omits_group_commit_when_off(self, tmp_path, schema, source):
        dtd, annotation = schema
        store = DocumentStore.init(tmp_path / "plain")
        store.put("doc", source, dtd, annotation)
        assert "group_commit" not in store.stats()
        assert store.group_commit is None
        store.close()  # no-op
