"""Tests for term-notation parsing and fresh-identifier generation."""

import pytest

from repro.errors import TermSyntaxError
from repro.xmltree import NodeIds, Tree, max_numeric_suffix, parse_forest, parse_term


class TestParseTerm:
    def test_single_node(self):
        tree = parse_term("r")
        assert tree.size == 1
        assert tree.label(tree.root) == "r"

    def test_auto_ids_document_order(self):
        tree = parse_term("r(a, b(c), d)")
        assert list(tree.nodes()) == ["n0", "n1", "n2", "n3", "n4"]
        assert tree.label("n0") == "r"
        assert tree.label("n3") == "c"

    def test_explicit_ids(self):
        tree = parse_term("r#root(a#left, a#right)")
        assert tree.children("root") == ("left", "right")

    def test_mixed_ids_avoid_explicit(self):
        tree = parse_term("r#n1(a, b)")
        assert tree.root == "n1"
        assert "n1" not in tree.children("n1")
        assert len(set(tree.nodes())) == 3

    def test_custom_prefix(self):
        tree = parse_term("r(a)", id_prefix="u")
        assert tree.root == "u0"

    def test_whitespace_tolerated(self):
        assert parse_term(" r ( a , b ) ") == parse_term("r(a,b)")

    def test_empty_parens_allowed(self):
        assert parse_term("r()") == parse_term("r")

    @pytest.mark.parametrize(
        "bad",
        ["", "(", "r(", "r(a", "r(a,)", "r)", "r(a))", "r a", "#x", "r(,a)"],
    )
    def test_syntax_errors(self, bad: str):
        with pytest.raises(TermSyntaxError):
            parse_term(bad)

    def test_duplicate_explicit_ids_rejected(self):
        with pytest.raises(TermSyntaxError):
            parse_term("r#x(a#x)")

    def test_labels_with_punctuation(self):
        tree = parse_term("patient-record(first.name, last_name)")
        assert tree.child_labels(tree.root) == ("first.name", "last_name")


class TestParseForest:
    def test_forest_shares_namespace(self):
        trees = parse_forest("a, b(c), d")
        assert [t.root for t in trees] == ["n0", "n1", "n3"]
        all_ids = [n for t in trees for n in t.nodes()]
        assert len(all_ids) == len(set(all_ids))

    def test_empty_forest(self):
        assert parse_forest("") == []

    def test_forest_trailing_garbage(self):
        with pytest.raises(TermSyntaxError):
            parse_forest("a, b)")


class TestNodeIds:
    def test_sequential(self):
        gen = NodeIds("m")
        assert gen.take(3) == ["m0", "m1", "m2"]

    def test_avoids_forbidden(self):
        gen = NodeIds("m", forbidden={"m0", "m2"})
        assert gen.take(3) == ["m1", "m3", "m4"]

    def test_never_repeats(self):
        gen = NodeIds()
        produced = set(gen.take(50))
        assert len(produced) == 50

    def test_forbid_after_creation(self):
        gen = NodeIds("m")
        gen.forbid({"m0"})
        assert gen.fresh() == "m1"

    def test_avoiding_continues_numbering(self):
        tree = parse_term("r#n0(a#n1, b#n7)")
        gen = NodeIds.avoiding(tree.nodes())
        assert gen.fresh() == "n8"

    def test_iter_protocol(self):
        gen = NodeIds("k")
        it = iter(gen)
        assert next(it) == "k0"
        assert next(it) == "k1"

    def test_max_numeric_suffix(self):
        assert max_numeric_suffix(["n0", "n12", "x3", "nab"], "n") == 12
        assert max_numeric_suffix([], "n") == -1
        assert max_numeric_suffix([("tuple", "id"), 7], "n") == -1


class TestTreeTermInterop:
    def test_round_trip_preserves_identity(self):
        tree = Tree.build("r", "root", [Tree.leaf("a", "kid")])
        assert parse_term(tree.to_term()) == tree
