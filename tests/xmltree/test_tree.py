"""Unit tests for the core tree structure."""

import pytest

from repro.errors import DuplicateNodeError, NodeNotFoundError, TreeError
from repro.xmltree import Tree, parse_term


@pytest.fixture
def t0() -> Tree:
    """The paper's Figure 1 tree."""
    return parse_term(
        "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
    )


class TestConstruction:
    def test_leaf(self):
        tree = Tree.leaf("a", "n1")
        assert tree.root == "n1"
        assert tree.label("n1") == "a"
        assert tree.size == 1
        assert tree.children("n1") == ()

    def test_build_nested(self):
        tree = Tree.build("r", "x", [Tree.leaf("a", "y"), Tree.leaf("b", "z")])
        assert tree.children("x") == ("y", "z")
        assert tree.child_labels("x") == ("a", "b")

    def test_build_rejects_duplicate_ids(self):
        with pytest.raises(DuplicateNodeError):
            Tree.build("r", "x", [Tree.leaf("a", "y"), Tree.leaf("b", "y")])

    def test_build_rejects_root_id_reuse(self):
        with pytest.raises(DuplicateNodeError):
            Tree.build("r", "x", [Tree.leaf("a", "x")])

    def test_build_rejects_empty_child(self):
        with pytest.raises(TreeError):
            Tree.build("r", "x", [Tree.empty()])

    def test_empty_tree(self):
        tree = Tree.empty()
        assert tree.is_empty
        assert tree.size == 0
        with pytest.raises(TreeError):
            tree.root

    def test_raw_constructor_validates_cycles(self):
        with pytest.raises(TreeError):
            Tree("a", {"a": "r", "b": "x"}, {"a": ("b",), "b": ("a",)})

    def test_raw_constructor_validates_unreachable(self):
        with pytest.raises(TreeError):
            Tree("a", {"a": "r", "b": "x"}, {})

    def test_raw_constructor_validates_missing_label(self):
        with pytest.raises(TreeError):
            Tree("a", {"a": "r"}, {"a": ("b",)})


class TestAccessors:
    def test_size_matches_paper(self, t0: Tree):
        assert t0.size == 11

    def test_labels(self, t0: Tree):
        assert t0.label("n0") == "r"
        assert t0.label("n9") == "b"
        assert t0.label("n10") == "c"

    def test_unknown_node_raises(self, t0: Tree):
        with pytest.raises(NodeNotFoundError):
            t0.label("n99")
        with pytest.raises(NodeNotFoundError):
            t0.children("n99")
        with pytest.raises(NodeNotFoundError):
            t0.parent("n99")

    def test_children_order(self, t0: Tree):
        assert t0.children("n0") == ("n1", "n2", "n3", "n4", "n5", "n6")
        assert t0.children("n3") == ("n7", "n8")

    def test_child_labels_word(self, t0: Tree):
        assert t0.child_labels("n0") == ("a", "b", "d", "a", "c", "d")

    def test_parent(self, t0: Tree):
        assert t0.parent("n0") is None
        assert t0.parent("n7") == "n3"
        assert t0.parent("n6") == "n0"

    def test_contains(self, t0: Tree):
        assert "n5" in t0
        assert "zz" not in t0

    def test_index_in_parent(self, t0: Tree):
        assert t0.index_in_parent("n1") == 0
        assert t0.index_in_parent("n6") == 5
        with pytest.raises(TreeError):
            t0.index_in_parent("n0")

    def test_following_siblings(self, t0: Tree):
        assert t0.following_siblings("n4") == ("n5", "n6")
        assert t0.following_siblings("n6") == ()
        assert t0.following_siblings("n0") == ()

    def test_depth_and_height(self, t0: Tree):
        assert t0.depth("n0") == 0
        assert t0.depth("n8") == 2
        assert t0.height() == 2
        assert Tree.leaf("a", "x").height() == 0
        assert Tree.empty().height() == -1


class TestTraversal:
    def test_preorder_document_order(self, t0: Tree):
        assert list(t0.nodes()) == [
            "n0", "n1", "n2", "n3", "n7", "n8", "n4", "n5", "n6", "n9", "n10",
        ]

    def test_postorder_children_first(self, t0: Tree):
        order = list(t0.postorder())
        assert order[-1] == "n0"
        assert order.index("n7") < order.index("n3")
        assert set(order) == t0.node_set

    def test_descendants(self, t0: Tree):
        assert set(t0.descendants("n3")) == {"n7", "n8"}
        assert set(t0.descendants_or_self("n3")) == {"n3", "n7", "n8"}
        assert set(t0.descendants("n10")) == set()

    def test_is_descendant(self, t0: Tree):
        assert t0.is_descendant("n7", "n3")
        assert t0.is_descendant("n7", "n0")
        assert not t0.is_descendant("n3", "n7")
        assert not t0.is_descendant("n7", "n7")


class TestDerivedTrees:
    def test_subtree_keeps_ids(self, t0: Tree):
        sub = t0.subtree("n3")
        assert sub.root == "n3"
        assert sub.size == 3
        assert sub.children("n3") == ("n7", "n8")

    def test_subtree_of_leaf(self, t0: Tree):
        sub = t0.subtree("n5")
        assert sub == Tree.leaf("c", "n5")

    def test_delete_subtree(self, t0: Tree):
        smaller = t0.delete_subtree("n3")
        assert smaller.size == 8
        assert "n7" not in smaller
        assert smaller.children("n0") == ("n1", "n2", "n4", "n5", "n6")
        # original untouched (immutability)
        assert t0.size == 11

    def test_delete_all_children_removes_entry(self, t0: Tree):
        tree = t0.delete_subtree("n9").delete_subtree("n10")
        assert tree.children("n6") == ()
        assert tree.is_leaf("n6")

    def test_delete_root_gives_empty(self, t0: Tree):
        assert t0.delete_subtree("n0").is_empty

    def test_insert_subtree(self, t0: Tree):
        inserted = t0.insert_subtree("n6", 1, Tree.leaf("c", "w0"))
        assert inserted.children("n6") == ("n9", "w0", "n10")
        assert inserted.parent("w0") == "n6"
        assert inserted.size == 12

    def test_insert_at_bounds(self, t0: Tree):
        assert t0.insert_subtree("n5", 0, Tree.leaf("a", "w")).children("n5") == ("w",)
        with pytest.raises(TreeError):
            t0.insert_subtree("n5", 1, Tree.leaf("a", "w"))

    def test_insert_duplicate_id_rejected(self, t0: Tree):
        with pytest.raises(DuplicateNodeError):
            t0.insert_subtree("n6", 0, Tree.leaf("c", "n3"))

    def test_replace_subtree(self, t0: Tree):
        replacement = parse_term("d#w0(c#w1)")
        replaced = t0.replace_subtree("n3", replacement)
        assert replaced.children("n0") == ("n1", "n2", "w0", "n4", "n5", "n6")
        assert "n7" not in replaced
        assert replaced.subtree("w0") == replacement

    def test_replace_root(self, t0: Tree):
        other = Tree.leaf("z", "zz")
        assert t0.replace_subtree("n0", other) == other

    def test_relabel_nodes(self, t0: Tree):
        renamed = t0.relabel_nodes({"n0": "root", "n10": "last"})
        assert renamed.root == "root"
        assert renamed.label("last") == "c"
        assert renamed.size == t0.size
        assert renamed.isomorphic(t0)

    def test_relabel_collision_rejected(self, t0: Tree):
        with pytest.raises(DuplicateNodeError):
            t0.relabel_nodes({"n1": "n2"})

    def test_with_fresh_ids(self, t0: Tree):
        fresh = t0.with_fresh_ids()
        assert fresh.isomorphic(t0)
        assert fresh.node_set.isdisjoint(t0.node_set)

    def test_map_labels(self, t0: Tree):
        upper = t0.map_labels(str.upper)
        assert upper.label("n0") == "R"
        assert upper.node_set == t0.node_set


class TestComparison:
    def test_equality_is_identifier_aware(self):
        left = parse_term("r#x(a#y)")
        right = parse_term("r#x(a#z)")
        assert left != right
        assert left.isomorphic(right)

    def test_equality_same_structure(self):
        left = parse_term("r#x(a#y, b#z)")
        right = parse_term("r#x(a#y, b#z)")
        assert left == right
        assert hash(left) == hash(right)

    def test_isomorphic_respects_order(self):
        assert not parse_term("r(a, b)").isomorphic(parse_term("r(b, a)"))

    def test_isomorphic_respects_labels(self):
        assert not parse_term("r(a)").isomorphic(parse_term("r(b)"))

    def test_isomorphism_mapping(self, t0: Tree):
        fresh = t0.with_fresh_ids()
        mapping = t0.isomorphism(fresh)
        assert mapping is not None
        assert mapping["n0"] == fresh.root
        assert len(mapping) == t0.size
        assert t0.relabel_nodes(mapping) == fresh

    def test_isomorphism_none_for_different_shapes(self):
        assert parse_term("r(a)").isomorphism(parse_term("r(a, a)")) is None

    def test_empty_isomorphism(self):
        assert Tree.empty().isomorphism(Tree.empty()) == {}
        assert Tree.empty().isomorphism(Tree.leaf("a", "x")) is None

    def test_shape_canonical(self):
        assert parse_term("r(a)").shape() == ("r", (("a", ()),))


class TestRendering:
    def test_to_term_round_trip(self, t0: Tree):
        assert parse_term(t0.to_term()) == t0

    def test_to_term_without_ids(self):
        assert parse_term("r#0(a#1, b#2(c#3))").to_term(with_ids=False) == "r(a, b(c))"

    def test_pretty_contains_all_nodes(self, t0: Tree):
        text = t0.pretty()
        for node in t0.nodes():
            assert f"#{node}" in text

    def test_repr_of_empty(self):
        assert repr(Tree.empty()) == "Tree.empty()"
