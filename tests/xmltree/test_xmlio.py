"""Tests for the XML bridge."""

import io

import pytest

from repro.errors import TreeError
from repro.xmltree import parse_term, tree_from_xml, tree_to_xml


class TestFromXml:
    def test_basic_structure(self):
        tree = tree_from_xml("<r><a/><b><c/></b></r>", id_attribute=None)
        assert tree.label(tree.root) == "r"
        assert tree.child_labels(tree.root) == ("a", "b")
        assert tree.size == 4

    def test_ids_from_attribute(self):
        tree = tree_from_xml('<r id="n0"><a id="n1"/></r>')
        assert tree.root == "n0"
        assert tree.children("n0") == ("n1",)

    def test_partial_ids_filled_in(self):
        tree = tree_from_xml('<r id="n0"><a/><b id="n1"/></r>')
        assert tree.root == "n0"
        kids = tree.children("n0")
        assert kids[1] == "n1"
        assert kids[0] not in {"n0", "n1"}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TreeError):
            tree_from_xml('<r id="x"><a id="x"/></r>')

    def test_strict_rejects_text(self):
        with pytest.raises(TreeError):
            tree_from_xml("<r>hello</r>", strict=True)

    def test_lenient_drops_text(self):
        tree = tree_from_xml("<r>hello<a/>world</r>", strict=False)
        assert tree.child_labels(tree.root) == ("a",)

    def test_file_like_source(self):
        tree = tree_from_xml(io.StringIO("<r><a/></r>"), id_attribute=None)
        assert tree.size == 2


class TestToXml:
    def test_round_trip_with_ids(self):
        tree = parse_term("r#n0(a#n1, d#n3(c#n8))")
        assert tree_from_xml(tree_to_xml(tree)) == tree

    def test_round_trip_without_ids_isomorphic(self):
        tree = parse_term("r(a, d(c))")
        back = tree_from_xml(tree_to_xml(tree, id_attribute=None), id_attribute=None)
        assert back.isomorphic(tree)

    def test_empty_tree_rejected(self):
        from repro.xmltree import Tree

        with pytest.raises(TreeError):
            tree_to_xml(Tree.empty())

    def test_indent_toggle(self):
        tree = parse_term("r(a)")
        assert "\n" in tree_to_xml(tree, indent=True)
        assert "\n" not in tree_to_xml(tree, indent=False)
