"""Structure-sharing edits: memo carry, shared maps, cold-rescan parity.

The PR-4 fast path rebuilt the tree editing helpers around copy-on-write
map patching. These tests pin the two properties that matter:

* **correctness** — an edited tree's maps, size table, and suffix index
  are exactly what a cold reconstruction computes;
* **reuse** — the memoized tables are *carried* (present on the edited
  tree without being recomputed), and unaffected entries are the same
  work a cold rescan would redo.
"""

import pytest

from repro.errors import DuplicateNodeError, TreeError
from repro.xmltree import Tree, parse_term
from repro.xmltree.nodeid import max_numeric_suffix


def cold_copy(tree: Tree) -> Tree:
    """Rebuild through the validating constructor — no carried memos."""
    return Tree(
        tree.root,
        {node: tree.label(node) for node in tree.nodes()},
        {node: tree.children(node) for node in tree.nodes()},
    )


@pytest.fixture
def doc() -> Tree:
    return parse_term(
        "r#n0(a#n1(b#f3, c#f7), d#n2, a#n3(b#f7x, c#f2(e#f1)), d#f9)"
    )


class TestEditCorrectness:
    """Edited trees equal their from-scratch reconstructions."""

    def test_delete_matches_cold(self, doc):
        edited = doc.delete_subtree("f2")
        cold = cold_copy(doc).delete_subtree("f2")
        assert edited == cold
        assert edited.parent("f7x") == "n3"
        assert "f1" not in edited

    def test_insert_matches_cold(self, doc):
        sub = parse_term("d#x0(c#x1)")
        edited = doc.insert_subtree("n0", 2, sub)
        cold = cold_copy(doc).insert_subtree("n0", 2, cold_copy(sub))
        assert edited == cold
        assert edited.parent("x0") == "n0"
        assert edited.children("n0")[2] == "x0"

    def test_replace_matches_cold(self, doc):
        sub = parse_term("a#y0(b#y1)")
        edited = doc.replace_subtree("n3", sub)
        cold = cold_copy(doc).replace_subtree("n3", cold_copy(sub))
        assert edited == cold
        assert edited.parent("y0") == "n0"
        assert "f2" not in edited

    def test_relabel_matches_cold(self, doc):
        mapping = {"n0": "m0", "f2": "m2"}
        assert doc.relabel_nodes(mapping) == cold_copy(doc).relabel_nodes(mapping)

    def test_duplicate_and_range_errors_survive(self, doc):
        with pytest.raises(DuplicateNodeError):
            doc.insert_subtree("n0", 0, parse_term("d#n2"))
        with pytest.raises(TreeError):
            doc.insert_subtree("n0", 9, parse_term("d#z"))
        with pytest.raises(DuplicateNodeError):
            doc.replace_subtree("n1", parse_term("a#q(b#n2)"))

    def test_map_labels_shares_structure(self, doc):
        mapped = doc.map_labels(str.upper)
        assert mapped._children is doc._children
        assert mapped._parents is doc._parents
        assert mapped.label("n0") == "R"
        assert doc.label("n0") == "r"


class TestSizeTableCarry:
    """`subtree_sizes()` entries are kept, not recomputed, across edits."""

    def test_delete_carries_and_matches_cold_rescan(self, doc):
        doc.subtree_sizes()  # force the memo on the source
        edited = doc.delete_subtree("f2")
        # carried: present without any subtree_sizes() call on `edited`
        assert edited._sizes is not None
        assert dict(edited.subtree_sizes()) == dict(
            cold_copy(edited).subtree_sizes()
        )

    def test_insert_carries_and_matches_cold_rescan(self, doc):
        doc.subtree_sizes()
        edited = doc.insert_subtree("n3", 0, parse_term("b#z0"))
        assert edited._sizes is not None
        assert dict(edited.subtree_sizes()) == dict(
            cold_copy(edited).subtree_sizes()
        )

    def test_replace_carries_and_matches_cold_rescan(self, doc):
        doc.subtree_sizes()
        edited = doc.replace_subtree("n1", parse_term("a#w0(b#w1, c#w2, c#w3)"))
        assert edited._sizes is not None
        assert dict(edited.subtree_sizes()) == dict(
            cold_copy(edited).subtree_sizes()
        )

    def test_unaffected_entries_not_recomputed(self, doc):
        sizes_before = dict(doc.subtree_sizes())
        edited = doc.delete_subtree("f2")
        # every node outside the deleted subtree and off the ancestor
        # path keeps its exact entry
        for node in ("n1", "f3", "f7", "n2", "f7x", "f9"):
            assert edited._sizes[node] == sizes_before[node]
        # the ancestor path re-sums by the subtree's size
        assert edited._sizes["n3"] == sizes_before["n3"] - 2
        assert edited._sizes["n0"] == sizes_before["n0"] - 2

    def test_lazy_when_source_memo_absent(self, doc):
        # no subtree_sizes() on the source → the edit must not force it
        edited = doc.delete_subtree("n2")
        assert doc._sizes is None
        assert edited._sizes is None


class TestSuffixIndexCarry:
    """`max_suffix()` agrees with a cold rescan through every edit."""

    def assert_matches_cold(self, tree: Tree, prefix: str = "f"):
        assert tree.max_suffix(prefix) == max_numeric_suffix(tree.nodes(), prefix)

    def test_insert_raises_max(self, doc):
        assert doc.max_suffix("f") == 9
        edited = doc.insert_subtree("n2", 0, parse_term("a#f40"))
        assert edited._suffixes is not None  # carried, not recomputed
        self.assert_matches_cold(edited)
        assert edited.max_suffix("f") == 40

    def test_delete_of_non_max_keeps_memo(self, doc):
        doc.max_suffix("f")
        edited = doc.delete_subtree("f2")  # removes f2, f1 — max f9 lives
        assert edited._suffixes == {"f": (9, 1)}
        self.assert_matches_cold(edited)

    def test_delete_of_last_max_witness_invalidates(self, doc):
        doc.max_suffix("f")
        edited = doc.delete_subtree("f9")
        # the only f9 left; the carried entry must drop, and the lazy
        # rescan must agree with the cold scan (f7 remains the max)
        assert edited._suffixes is None or "f" not in edited._suffixes
        self.assert_matches_cold(edited)
        assert edited.max_suffix("f") == 7

    def test_duplicate_suffix_counts_witnesses(self):
        tree = parse_term("r#n0(a#f5, b#f5x, c#f5y(d#f5z), a#f05)")
        # f5 and f05 both witness suffix 5
        assert tree.max_suffix("f") == 5
        edited = tree.delete_subtree("f5")
        assert edited._suffixes == {"f": (5, 1)}  # f05 still witnesses
        self.assert_matches_cold(edited)

    def test_replace_carries_both_sides(self, doc):
        doc.max_suffix("f")
        edited = doc.replace_subtree("n1", parse_term("a#f30(b#f31)"))
        self.assert_matches_cold(edited)
        assert edited.max_suffix("f") == 31

    def test_non_matching_prefix_untouched(self, doc):
        doc.max_suffix("n")
        edited = doc.delete_subtree("f2")
        assert edited.max_suffix("n") == max_numeric_suffix(edited.nodes(), "n")


class TestContentKey:
    def test_equal_trees_share_keys(self, doc):
        assert doc.content_key() == cold_copy(doc).content_key()

    def test_any_difference_changes_the_key(self, doc):
        assert doc.content_key() != doc.delete_subtree("n2").content_key()
        assert doc.content_key() != doc.map_labels(str.upper).content_key()
        assert (
            doc.content_key()
            != doc.relabel_nodes({"n2": "q2"}).content_key()
        )

    def test_empty_tree_key(self):
        assert Tree.empty().content_key() == Tree.empty().content_key()
