"""Tests for the repro-xml command-line interface."""

import pytest

from repro.cli import main
from repro.errors import InvalidViewUpdateError, NoInversionError, exit_code

DTD_TEXT = """
<!ELEMENT r (a,(b|c),d)*>
<!ELEMENT d ((a|b),c)*>
"""

ANNOTATION_TEXT = """
hide r b
hide r c
hide d a
hide d b
"""

DOC_XML = """
<r id="n0">
  <a id="n1"/><b id="n2"/>
  <d id="n3"><a id="n7"/><c id="n8"/></d>
  <a id="n4"/><c id="n5"/>
  <d id="n6"><b id="n9"/><c id="n10"/></d>
</r>
"""

UPDATE_TERM = (
    "Nop.r#n0(Del.a#n1, Del.d#n3(Del.c#n8), Nop.a#n4, "
    "Ins.d#n11(Ins.c#n13, Ins.c#n14), Ins.a#n12, "
    "Nop.d#n6(Nop.c#n10, Ins.c#n15))"
)


@pytest.fixture
def files(tmp_path):
    dtd = tmp_path / "schema.dtd"
    dtd.write_text(DTD_TEXT)
    annotation = tmp_path / "policy.ann"
    annotation.write_text(ANNOTATION_TEXT)
    doc = tmp_path / "doc.xml"
    doc.write_text(DOC_XML)
    update = tmp_path / "update.term"
    update.write_text(UPDATE_TERM)
    return tmp_path, dtd, annotation, doc, update


class TestValidate:
    def test_valid_document(self, files, capsys):
        _, dtd, _, doc, _ = files
        assert main(["validate", "--dtd", str(dtd), "--doc", str(doc)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_document(self, files, tmp_path, capsys):
        _, dtd, _, _, _ = files
        bad = tmp_path / "bad.xml"
        bad.write_text('<r id="x"><a id="y"/></r>')
        assert main(["validate", "--dtd", str(dtd), "--doc", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestView:
    def test_view_extraction(self, files, capsys):
        _, dtd, annotation, doc, _ = files
        code = main([
            "view", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert 'id="n3"' in out
        assert 'id="n2"' not in out  # hidden b

    def test_view_to_file(self, files, tmp_path):
        _, dtd, annotation, doc, _ = files
        target = tmp_path / "view.xml"
        main([
            "view", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--out", str(target),
        ])
        assert 'id="n10"' in target.read_text()


class TestViewDTD:
    def test_derived_rules(self, files, capsys):
        _, dtd, annotation, _, _ = files
        code = main([
            "view-dtd", "--dtd", str(dtd), "--annotation", str(annotation),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "<!ELEMENT" in out


class TestInvert:
    def test_invert_view(self, files, tmp_path, capsys):
        _, dtd, annotation, doc, _ = files
        # first extract the view, then invert it
        view_file = tmp_path / "view.xml"
        main([
            "view", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--out", str(view_file),
        ])
        code = main([
            "invert", "--dtd", str(dtd), "--annotation", str(annotation),
            "--view-doc", str(view_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert 'id="n0"' in out  # visible ids preserved

    def test_invert_impossible_view(self, files, tmp_path, capsys):
        _, dtd, annotation, _, _ = files
        bad = tmp_path / "bad.xml"
        bad.write_text('<r id="x"><a id="y"/></r>')  # a alone is not a view
        code = main([
            "invert", "--dtd", str(dtd), "--annotation", str(annotation),
            "--view-doc", str(bad),
        ])
        assert code == exit_code(NoInversionError())
        err = capsys.readouterr().err
        assert "error" in err
        assert "no_inversion" in err


class TestPropagate:
    def test_propagate_document(self, files, capsys):
        _, dtd, annotation, doc, update = files
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(update),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert 'id="n11"' in captured.out       # inserted d materialised
        assert "propagation cost: 14" in captured.err

    def test_propagate_script_output(self, files, capsys):
        _, dtd, annotation, doc, update = files
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(update), "--script",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("Nop.r#n0(")

    def test_preference_flag(self, files, capsys):
        _, dtd, annotation, doc, update = files
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(update), "--prefer", "del",
        ])
        assert code == 0

    def test_insertlets_file(self, files, tmp_path, capsys):
        _, dtd, annotation, doc, update = files
        insertlets = tmp_path / "w.ins"
        insertlets.write_text("b = b\nc = c\n# comment line\n")
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(update),
            "--insertlets", str(insertlets),
        ])
        assert code == 0


# second update of the stream, built against the view the first one
# produces: r#n0(a#n4, d#n11(c#n13, c#n14), a#n12, d#n6(c#n10, c#n15))
SECOND_UPDATE_TERM = (
    "Nop.r#n0(Nop.a#n4, Nop.d#n11(Nop.c#n13, Nop.c#n14), "
    "Del.a#n12, Del.d#n6(Del.c#n10, Del.c#n15))"
)


class TestPropagateStream:
    def test_stream_serves_sequential_updates(self, files, tmp_path, capsys):
        _, dtd, annotation, doc, _ = files
        stream = tmp_path / "stream.term"
        stream.write_text(UPDATE_TERM + "\n\n" + SECOND_UPDATE_TERM + "\n")
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(stream), "--stream",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert 'id="n11"' in captured.out        # inserted d survived
        assert 'id="n6"' not in captured.out     # deleted by update 2
        assert "served 2 updates" in captured.err

    def test_stream_script_output_emits_propagations(self, files, tmp_path, capsys):
        _, dtd, annotation, doc, _ = files
        stream = tmp_path / "stream.term"
        stream.write_text(UPDATE_TERM + "\n\n" + SECOND_UPDATE_TERM + "\n")
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(stream), "--stream", "--script",
        ])
        assert code == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 2
        # propagation scripts, not the input updates: they span the whole
        # source, so hidden nodes (n2, invented f-ids) appear in them
        assert lines[0].startswith("Nop.r#n0(")
        assert "n2" in lines[0] and "f0" in lines[0]
        assert lines[0] != UPDATE_TERM
        # update 2 deletes d#n6, which drags its hidden child n9 along —
        # visible only in the propagation script
        assert "Del.d#n6" in lines[1] and "n9" in lines[1]
        assert lines[1] != SECOND_UPDATE_TERM

    def test_empty_stream_is_an_error(self, files, tmp_path, capsys):
        _, dtd, annotation, doc, _ = files
        stream = tmp_path / "empty.term"
        stream.write_text("\n\n")
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(stream), "--stream",
        ])
        assert code == 1

    def test_stream_stale_second_update_fails_cleanly(self, files, tmp_path, capsys):
        _, dtd, annotation, doc, _ = files
        stream = tmp_path / "stale.term"
        # the same update twice: the second is built against the original
        # view, which no longer matches after the first propagation
        stream.write_text(UPDATE_TERM + "\n\n" + UPDATE_TERM + "\n")
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(stream), "--stream",
        ])
        # the second update is validated against the advanced view and
        # rejected as an invalid view update (not a generic exit 1)
        assert code == exit_code(InvalidViewUpdateError())
        assert "error" in capsys.readouterr().err

    def test_invalid_update_reports_error(self, files, tmp_path, capsys):
        _, dtd, annotation, doc, _ = files
        bad = tmp_path / "bad.term"
        bad.write_text("Nop.r#n0(Nop.a#n1)")
        code = main([
            "propagate", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(bad),
        ])
        assert code == exit_code(InvalidViewUpdateError())
        err = capsys.readouterr().err
        assert "error" in err
        assert "invalid_view_update" in err


class TestRepairCompare:
    def test_d3_example_flags_violation(self, tmp_path, capsys):
        dtd = tmp_path / "d3.dtd"
        dtd.write_text("<!ELEMENT r (b,(c|EMPTY),(a,c)*)>")
        annotation = tmp_path / "a3.ann"
        annotation.write_text("hide r b\nhide r a\n")
        doc = tmp_path / "t.xml"
        doc.write_text('<r id="m0"><b id="m1"/><a id="m2"/><c id="m3"/></r>')
        update = tmp_path / "s.term"
        update.write_text("Nop.r#m0(Nop.c#m3, Ins.c#u0)")
        code = main([
            "repair-compare", "--dtd", str(dtd), "--annotation", str(annotation),
            "--doc", str(doc), "--update", str(update),
        ])
        assert code == 2  # side-effect violation detected
        out = capsys.readouterr().out
        assert "side-effect free=False" in out


class TestErrors:
    def test_missing_file(self, tmp_path, capsys):
        code = main(["validate", "--dtd", str(tmp_path / "nope.dtd"),
                     "--doc", str(tmp_path / "nope.xml")])
        assert code == 1
        assert "error" in capsys.readouterr().err
