"""Tests for annotations and view extraction (paper Figure 3)."""

import pytest

from repro.errors import AnnotationError
from repro.views import HIDDEN, VISIBLE, Annotation, SecurityPolicy
from repro.xmltree import Tree, parse_term


@pytest.fixture
def t0() -> Tree:
    return parse_term(
        "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
    )


@pytest.fixture
def a0() -> Annotation:
    """The paper's Figure 3 annotation A0."""
    return Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))


class TestAnnotationFunction:
    def test_default_visible(self, a0: Annotation):
        assert a0("r", "a") == VISIBLE
        assert a0("r", "d") == VISIBLE
        assert a0("d", "c") == VISIBLE

    def test_hidden_pairs(self, a0: Annotation):
        assert a0("r", "b") == HIDDEN
        assert a0("r", "c") == HIDDEN
        assert a0("d", "a") == HIDDEN
        assert a0("d", "b") == HIDDEN

    def test_visible_and_hides(self, a0: Annotation):
        assert a0.visible("r", "a")
        assert a0.hides("r", "b")

    def test_identity(self, t0: Tree):
        assert Annotation.identity().view(t0) == t0

    def test_default_hidden(self):
        annotation = Annotation({("r", "a"): VISIBLE}, default=HIDDEN)
        assert annotation.visible("r", "a")
        assert annotation.hides("r", "b")

    def test_bad_values_rejected(self):
        with pytest.raises(AnnotationError):
            Annotation({("r", "a"): 2})
        with pytest.raises(AnnotationError):
            Annotation(default=5)

    def test_hidden_pairs_set(self, a0: Annotation):
        assert ("r", "b") in a0.hidden_pairs()
        assert ("r", "a") not in a0.hidden_pairs()


class TestVisibility:
    def test_paper_visible_set(self, t0: Tree, a0: Annotation):
        assert a0.visible_nodes(t0) == {"n0", "n1", "n3", "n4", "n6", "n8", "n10"}

    def test_paper_hidden_set(self, t0: Tree, a0: Annotation):
        assert a0.hidden_nodes(t0) == {"n2", "n5", "n7", "n9"}

    def test_root_always_visible(self, t0: Tree):
        everything_hidden = Annotation({}, default=HIDDEN)
        assert everything_hidden.visible_nodes(t0) == {"n0"}

    def test_upward_closed(self, t0: Tree):
        """Descendants of hidden nodes are hidden even if their pair says visible."""
        annotation = Annotation.hiding(("r", "d"))  # hides n3, n6
        visible = annotation.visible_nodes(t0)
        # (d, c) is visible by default, but c-nodes under hidden d stay hidden
        assert "n8" not in visible
        assert "n10" not in visible

    def test_empty_tree(self, a0: Annotation):
        assert a0.visible_nodes(Tree.empty()) == frozenset()
        assert a0.view(Tree.empty()).is_empty


class TestViewExtraction:
    def test_paper_figure3_view(self, t0: Tree, a0: Annotation):
        expected = parse_term("r#n0(a#n1, d#n3(c#n8), a#n4, d#n6(c#n10))")
        assert a0.view(t0) == expected

    def test_view_preserves_ids_and_order(self, t0: Tree, a0: Annotation):
        view = a0.view(t0)
        assert view.children("n0") == ("n1", "n3", "n4", "n6")
        assert view.children("n6") == ("n10",)

    def test_is_view_of(self, t0: Tree, a0: Annotation):
        assert a0.is_view_of(a0.view(t0), t0)
        assert not a0.is_view_of(t0, t0)  # t0 has hidden nodes

    def test_view_idempotent_on_view(self, t0: Tree, a0: Annotation):
        view = a0.view(t0)
        assert a0.view(view) == view


class TestParse:
    def test_parse_directives(self):
        annotation = Annotation.parse(
            """
            # A0 from the paper
            hide r b
            hide r c
            hide d a
            hide d b
            """
        )
        assert annotation.hides("r", "b")
        assert annotation.visible("r", "a")

    def test_parse_default_and_show(self):
        annotation = Annotation.parse("default hidden\nshow r a")
        assert annotation.visible("r", "a")
        assert annotation.hides("r", "z")

    def test_parse_errors(self):
        with pytest.raises(AnnotationError):
            Annotation.parse("frobnicate r b")
        with pytest.raises(AnnotationError):
            Annotation.parse("default sometimes")


class TestSecurityPolicy:
    def test_label_rule_applies_everywhere(self, t0: Tree):
        policy = SecurityPolicy().deny_label("b", "internal")
        annotation = policy.annotation({"r", "a", "b", "c", "d"})
        assert annotation.hides("r", "b")
        assert annotation.hides("d", "b")
        assert annotation.visible("r", "a")

    def test_pair_overrides_label(self):
        policy = SecurityPolicy().deny_label("c").allow("d", "c")
        annotation = policy.annotation({"r", "d", "c"})
        assert annotation.hides("r", "c")
        assert annotation.visible("d", "c")

    def test_conflicting_rules_rejected(self):
        with pytest.raises(AnnotationError):
            SecurityPolicy().deny_label("b").allow_label("b")
        with pytest.raises(AnnotationError):
            SecurityPolicy().deny("r", "b").allow("r", "b")

    def test_audit_lines(self):
        policy = SecurityPolicy().deny("r", "b", "sensitive").allow_label("a")
        lines = list(policy.audit())
        assert any("deny b under r — sensitive" in line for line in lines)
        assert any("allow label a" in line for line in lines)

    def test_reproduces_a0(self, t0: Tree, a0: Annotation):
        policy = (
            SecurityPolicy()
            .deny("r", "b")
            .deny("r", "c")
            .deny("d", "a")
            .deny("d", "b")
        )
        annotation = policy.annotation({"r", "a", "b", "c", "d"})
        assert annotation.view(t0) == a0.view(t0)
