"""Integration: multi-step editing sessions against a living document.

A realistic deployment applies one propagation after another: each round
the user sees the *current* view, edits it, the propagation updates the
source, and the next round starts from there. These tests run several
rounds end to end and check the global invariants after every step.
"""

import random

import pytest

from repro.core import propagate, verify_propagation
from repro.dtd import DTD, view_dtd
from repro.editing import UpdateBuilder
from repro.generators import random_view_update
from repro.views import Annotation
from repro.xmltree import NodeIds, parse_term


class TestManualSession:
    def test_three_round_session(self):
        dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
        annotation = Annotation.hiding(
            ("r", "b"), ("r", "c"), ("d", "a"), ("d", "b")
        )
        source = parse_term(
            "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
        )
        fresh = NodeIds("sess", forbidden=set(source.nodes()))

        # round 1: delete the first group
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.delete("n1")
        builder.delete("n3")
        update = builder.script()
        script = propagate(dtd, annotation, source, update, fresh=fresh.fresh)
        assert verify_propagation(dtd, annotation, source, update, script)
        source = script.output_tree

        # round 2: append a fresh (a, d) group through the new view
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.insert("n0", parse_term("a#r2a"))
        builder.insert("n0", parse_term("d#r2d(c#r2c)"))
        update = builder.script()
        script = propagate(dtd, annotation, source, update, fresh=fresh.fresh)
        assert verify_propagation(dtd, annotation, source, update, script)
        source = script.output_tree
        assert "r2a" in source and "r2d" in source

        # round 3: extend the surviving original d-node
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.insert("n6", parse_term("c#r3c"))
        update = builder.script()
        script = propagate(dtd, annotation, source, update, fresh=fresh.fresh)
        assert verify_propagation(dtd, annotation, source, update, script)
        source = script.output_tree

        # global invariants after the session
        assert dtd.validates(source)
        assert "n5" in source  # hidden survivor from round 0 still there
        assert source.children("n6")[-1] == "r3c"

    def test_rename_then_edit_renamed(self):
        """Round 2 edits a node renamed in round 1."""
        dtd = DTD(
            {"doc": "(article|note)*", "article": "title,p*",
             "note": "title,p*", "title": "", "p": ""}
        )
        annotation = Annotation.identity()
        source = parse_term("doc#d(article#a1(title#t1))")

        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.rename("a1", "note")
        script = propagate(dtd, annotation, source, builder.script())
        source = script.output_tree
        assert source.label("a1") == "note"

        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.insert("a1", parse_term("p#p1"))
        update = builder.script()
        script = propagate(dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)
        assert script.output_tree.child_labels("a1") == ("title", "p")


class TestRandomisedSessions:
    @pytest.mark.parametrize("seed", range(8))
    def test_five_round_random_session(self, seed):
        rng = random.Random(seed)
        dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
        annotation = Annotation.hiding(
            ("r", "b"), ("r", "c"), ("d", "a"), ("d", "b")
        )
        vdtd = view_dtd(dtd, annotation)
        source = parse_term(
            "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
        )
        for round_number in range(5):
            update = random_view_update(
                rng, dtd, annotation, source, n_ops=2, derived_view_dtd=vdtd
            )
            script = propagate(dtd, annotation, source, update)
            assert verify_propagation(dtd, annotation, source, update, script)
            source = script.output_tree
            assert dtd.validates(source)
            assert vdtd.validates(annotation.view(source))

    @pytest.mark.parametrize("seed", range(4))
    def test_view_sizes_track_edits(self, seed):
        """The view after each round equals the update's output exactly."""
        rng = random.Random(100 + seed)
        dtd = DTD({"list": "item*", "item": "payload?,secret?", "payload": "", "secret": ""})
        annotation = Annotation.hiding(("item", "secret"))
        source = parse_term(
            "list#l(item#i1(payload#p1, secret#s1), item#i2(secret#s2))"
        )
        for _ in range(4):
            update = random_view_update(rng, dtd, annotation, source, n_ops=2)
            script = propagate(dtd, annotation, source, update)
            assert annotation.view(script.output_tree) == update.output_tree
            source = script.output_tree
