"""Endpoint routing: replica reads with staleness budgets, stateless
process-pool batches, and the sharded-document front."""

import pytest

from repro.replication import StandbyStore, replicate
from repro.server import ReproServer, RemoteServingError, ServeClient
from repro.store import DocumentStore

from .conftest import run_with_server, sequential_updates


class TestViewRouting:
    def test_fresh_replica_serves_bounded_reads(
        self, tmp_path, store_root, workload
    ):
        store = DocumentStore(store_root, fsync="off")
        standby = StandbyStore.init(tmp_path / "standby", primary_root=store_root)
        replicate(store, standby)
        store.close()
        standby.close()
        server = ReproServer(
            store_root=store_root, standby_root=tmp_path / "standby", fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.view("doc0", max_lag=0)

        result = run_with_server(server, client_work)
        assert result["served_by"] == "replica"
        assert result["lag"] == 0
        assert result["view"].startswith("<")

    def test_unmeasurable_lag_falls_back_to_primary(
        self, tmp_path, store_root, workload
    ):
        """The satellite-1 semantics end to end: a wire-only standby (no
        primary marker) cannot measure its lag; the fail-closed
        ReplicationLagError routes the bounded read to the primary."""
        store = DocumentStore(store_root, fsync="off")
        dark = StandbyStore.init(tmp_path / "dark")  # no primary_root
        replicate(store, dark)
        store.close()
        dark.close()
        server = ReproServer(
            store_root=store_root, standby_root=tmp_path / "dark", fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                bounded = client.view("doc0", max_lag=0)
                unbounded = client.view("doc0")
            return bounded, unbounded

        bounded, unbounded = run_with_server(server, client_work)
        assert bounded["served_by"] == "primary"
        # no bound: the replica serves (staleness unconstrained)
        assert unbounded["served_by"] == "replica"
        assert server.replica_fallbacks == {"doc0": 1}

    def test_replica_only_server_surfaces_lag_error(
        self, tmp_path, store_root, workload
    ):
        """No primary to fall back to: the typed replication_lag payload
        reaches the client instead of a traceback."""
        store = DocumentStore(store_root, fsync="off")
        dark = StandbyStore.init(tmp_path / "dark")
        replicate(store, dark)
        store.close()
        dark.close()
        server = ReproServer(standby_root=tmp_path / "dark")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(RemoteServingError) as caught:
                    client.view("doc0", max_lag=0)
            return caught.value

        error = run_with_server(server, client_work)
        assert error.code == "replication_lag"
        assert error.remote_exit_code == 8


class TestBatchEndpoint:
    def test_stateless_batch_matches_library(self, workload):
        from repro.editing import EditScript
        from repro.engine import ViewEngine
        from repro.dtd import serialize_dtd
        from repro.xmltree import tree_to_xml

        terms = [sequential_updates(workload, 1, seed=s)[0] for s in (1, 2, 3)]
        engine = ViewEngine(workload.dtd, workload.annotation)
        expected = [
            script.to_term()
            for script in engine.propagate_many(
                [(workload.source, EditScript.parse(term)) for term in terms]
            )
        ]
        server = ReproServer()  # no roots: batch is stateless

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.request(
                    "batch",
                    dtd=serialize_dtd(workload.dtd),
                    annotation=workload.annotation.serialize(),
                    requests=[
                        {
                            "source": tree_to_xml(workload.source),
                            "update": term,
                        }
                        for term in terms
                    ],
                )

        result = run_with_server(server, client_work)
        assert result["count"] == 3
        assert result["scripts"] == expected

    def test_empty_batch_is_served_not_crashed(self, workload):
        """The satellite-3 edge over the wire: an empty request list
        (with the process pool requested) answers [] instead of dying
        in balanced_chunk_indices."""
        from repro.dtd import serialize_dtd

        server = ReproServer()

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.request(
                    "batch",
                    dtd=serialize_dtd(workload.dtd),
                    annotation=workload.annotation.serialize(),
                    requests=[],
                    parallel="process",
                    workers=4,
                )

        result = run_with_server(server, client_work)
        assert result == {"count": 0, "scripts": [], "costs": []}


class TestShardEndpoint:
    def test_shard_propagate_fronts_the_sharded_document(
        self, tmp_path, workload
    ):
        from repro.editing import EditScript
        from repro.engine import ViewEngine
        from repro.generators.workloads import huge_document
        from repro.sharding import ShardedDocument

        big = huge_document(300)
        doc = ShardedDocument.create(
            tmp_path / "shards", big.source, big.dtd, big.annotation,
            depth=1, fsync="off",
        )
        doc.close()

        # one sequential update against the huge document's view
        import random

        from repro.generators.updates import random_view_update

        update = random_view_update(
            random.Random(9), big.dtd, big.annotation, big.source, n_ops=1
        )
        term = update.to_term()
        expected = (
            ViewEngine(big.dtd, big.annotation)
            .session(big.source)
            .propagate(update)
            .to_term()
        )

        server = ReproServer(shard_root=tmp_path / "shards", fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.request("shard_propagate", update=term)

        result = run_with_server(server, client_work)
        assert result["spliced"] is True
        assert result["script"] == expected
