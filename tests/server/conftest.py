"""Mark every test under ``tests/server`` with the ``server`` marker
(CI's server job runs ``-m server``) and share workload/store fixtures
plus the in-process server harness."""

import asyncio
import pathlib
import random
import threading

import pytest

from repro.generators.updates import random_view_update
from repro.generators.workloads import running_example
from repro.store import DocumentStore

_HERE = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        path = getattr(item, "path", None) or getattr(item, "fspath", None)
        if path is not None and _HERE in pathlib.Path(str(path)).parents:
            item.add_marker(pytest.mark.server)


@pytest.fixture
def workload():
    """The paper's running example, 4 groups — small but non-trivial."""
    return running_example(4)


@pytest.fixture
def store_root(tmp_path, workload):
    """A store directory holding documents doc0..doc3 (one workload)."""
    store = DocumentStore.init(tmp_path / "store", fsync="off")
    for index in range(4):
        store.put(
            f"doc{index}", workload.source, workload.dtd, workload.annotation
        )
    store.close()
    return tmp_path / "store"


def sequential_updates(workload, length, seed=11):
    """A chain of *length* sequential view updates (each built against
    the view the previous one produced), as term strings."""
    from repro.engine import ViewEngine

    rng = random.Random(seed)
    engine = ViewEngine(workload.dtd, workload.annotation)
    session = engine.session(workload.source)
    terms = []
    for _ in range(length):
        update = random_view_update(
            rng, workload.dtd, workload.annotation, session.source, n_ops=2
        )
        terms.append(update.to_term())
        session.propagate(update)
    return terms


def run_with_server(server, client_work, *, after=None):
    """Start *server*, run blocking *client_work(host, port)* in a
    thread, then drain. Returns ``client_work``'s result.

    *after* is an optional async hook run between client completion and
    the drain (for tests that need the still-running server).
    """

    async def main():
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(None, client_work, host, port)
        if after is not None:
            await after(server)
        await server.drain()
        return result

    return asyncio.run(main())


def in_thread(fn, *args):
    """Run *fn(*args)* in a thread; returns (thread, result_box)."""
    box = {}

    def target():
        try:
            box["result"] = fn(*args)
        except BaseException as error:  # surfaced by the caller's join
            box["error"] = error

    thread = threading.Thread(target=target)
    thread.start()
    return thread, box
