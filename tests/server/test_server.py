"""End-to-end serving: concurrency, typed errors, metrics, drain.

Everything runs an in-process :class:`ReproServer` on a loopback port
with real sockets — the same bytes a remote client would send.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.engine import ViewEngine
from repro.errors import exit_code, UnknownDocumentError
from repro.server import ReproServer, RemoteServingError, ServeClient
from repro.server import handlers
from repro.xmltree import tree_to_xml

from .conftest import in_thread, run_with_server, sequential_updates


def _scrape(host, port, path="/metrics"):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


class TestConcurrentClients:
    def test_four_clients_on_distinct_documents_match_in_process(
        self, store_root, workload
    ):
        """The acceptance bar: >= 4 concurrent clients streaming updates
        to distinct documents, zero cross-session corruption — every
        translated script byte-identical to in-process serving."""
        streams = {
            f"doc{index}": sequential_updates(workload, 6, seed=100 + index)
            for index in range(4)
        }
        server = ReproServer(store_root=store_root, fsync="off")

        def one_client(host, port, doc_id):
            scripts = []
            with ServeClient(host, port) as client:
                for term in streams[doc_id]:
                    result = client.propagate(doc_id, term)
                    scripts.append(result["script"])
            return scripts

        def client_work(host, port):
            threads = [
                in_thread(one_client, host, port, doc_id) for doc_id in streams
            ]
            results = {}
            for (thread, box), doc_id in zip(threads, streams):
                thread.join(timeout=120)
                assert not thread.is_alive()
                if "error" in box:
                    raise box["error"]
                results[doc_id] = box["result"]
            return results

        served = run_with_server(server, client_work)

        from repro.editing import EditScript

        for doc_id, terms in streams.items():
            engine = ViewEngine(workload.dtd, workload.annotation)
            session = engine.session(workload.source)
            expected = [
                session.propagate(EditScript.parse(term)).to_term()
                for term in terms
            ]
            assert served[doc_id] == expected, doc_id

    def test_one_document_keeps_sequential_session_semantics(
        self, store_root, workload
    ):
        """One document, one writer streaming its sequential chain while
        three readers hammer `view` and `stats`: the per-document lock
        must serialise session access — the final served states and
        every observed view must be states of the sequential history,
        never a torn interleaving."""
        terms = sequential_updates(workload, 6, seed=7)

        # the legitimate view states: one per prefix of the chain
        from repro.editing import EditScript

        engine = ViewEngine(workload.dtd, workload.annotation)
        session = engine.session(workload.source)
        legit_views = {tree_to_xml(session.view)}
        for term in terms:
            session.propagate(EditScript.parse(term))
            legit_views.add(tree_to_xml(session.view))
        final_source = session.source.to_term()

        server = ReproServer(store_root=store_root, fsync="off")
        stop = threading.Event()
        observed = []

        def writer(host, port):
            with ServeClient(host, port) as client:
                for term in terms:
                    client.propagate("doc0", term)
                    time.sleep(0.01)  # let readers interleave
            stop.set()

        def reader(host, port):
            with ServeClient(host, port) as client:
                while not stop.is_set():
                    observed.append(client.view("doc0")["view"])
                    client.request("stats")

        def client_work(host, port):
            workers = [in_thread(writer, host, port)] + [
                in_thread(reader, host, port) for _ in range(3)
            ]
            for thread, box in workers:
                thread.join(timeout=120)
                assert not thread.is_alive()
                if "error" in box:
                    raise box["error"]
            return None

        async def check_final(running):
            assert running.session("doc0").source.to_term() == final_source

        run_with_server(server, client_work, after=check_final)
        assert observed, "readers never got a view"
        torn = [view for view in observed if view not in legit_views]
        assert not torn, f"{len(torn)} observed views are not prefix states"

    def test_conflicting_writer_fails_typed_without_corruption(
        self, store_root, workload
    ):
        """Two writers race the same document with the same update: the
        loser gets a typed invalid_view_update payload (its update was
        built against a view the winner already advanced) and the
        document ends exactly one propagation ahead — not a blend."""
        term = sequential_updates(workload, 1, seed=23)[0]
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            outcomes = []
            barrier = threading.Barrier(2)

            def racer():
                with ServeClient(host, port) as client:
                    barrier.wait()
                    try:
                        client.propagate("doc1", term)
                        return "ok"
                    except RemoteServingError as error:
                        return error.code

            threads = [in_thread(racer) for _ in range(2)]
            for thread, box in threads:
                thread.join(timeout=60)
                outcomes.append(box.get("result") or box.get("error"))
            return outcomes

        async def check_final(running):
            assert running.session("doc1").last_seq == 1

        outcomes = run_with_server(server, client_work, after=check_final)
        assert sorted(str(o) for o in outcomes) == ["invalid_view_update", "ok"]


class TestTypedErrorPayloads:
    def test_unknown_document_maps_to_table_code(self, store_root):
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(RemoteServingError) as caught:
                    client.view("nope")
                return caught.value

        error = run_with_server(server, client_work)
        assert error.code == "unknown_document"
        assert error.remote_exit_code == exit_code(UnknownDocumentError("nope"))
        assert error.remote_type == "UnknownDocumentError"

    def test_unknown_op_and_malformed_request(self, store_root):
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            codes = []
            with ServeClient(host, port) as client:
                for request in ({"op": "frobnicate"}, {"op": "propagate"}):
                    try:
                        client.request(**request)
                    except RemoteServingError as error:
                        codes.append(error.code)
            return codes

        assert run_with_server(server, client_work) == [
            "server_failed",
            "server_failed",
        ]

    def test_request_id_is_echoed(self, store_root):
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            from repro.server.protocol import encode_message

            with ServeClient(host, port) as client:
                client._sock.sendall(
                    encode_message({"op": "ping", "id": "req-42"})
                )
                return client._read_response()

        response = run_with_server(server, client_work)
        assert response["ok"] and response["id"] == "req-42"


class TestMetricsScrape:
    def test_metrics_shape_covers_the_stack(self, store_root, workload):
        terms = sequential_updates(workload, 2, seed=5)
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                for term in terms:
                    client.propagate("doc2", term)
                client.view("doc2")
            status, text = _scrape(host, port)
            assert status == 200
            return text

        text = run_with_server(server, client_work)
        # per-endpoint counters and latencies
        assert 'repro_server_requests_total{endpoint="propagate"} 2' in text
        assert 'repro_server_requests_total{endpoint="view"} 1' in text
        assert 'repro_server_request_seconds_sum{endpoint="propagate"}' in text
        assert 'repro_server_request_seconds_count{endpoint="propagate"} 2' in text
        assert 'repro_server_request_seconds_max{endpoint="propagate"}' in text
        # the fixed-bucket latency histogram rides alongside the summary
        assert "# TYPE repro_server_latency_seconds histogram" in text
        assert 'repro_server_latency_seconds_bucket{endpoint="propagate",le="0.001"}' in text
        assert 'repro_server_latency_seconds_bucket{endpoint="propagate",le="+Inf"} 2' in text
        assert 'repro_server_latency_seconds_sum{endpoint="propagate"}' in text
        assert 'repro_server_latency_seconds_count{endpoint="propagate"} 2' in text
        # tracing retention counters export even while tracing is off
        assert "repro_tracing_enabled" in text
        assert 'repro_traces_total{outcome="kept"}' in text
        # registry and engine counters
        assert "repro_registry_hit_rate" in text
        assert 'counter="propagations"' in text
        assert 'counter="memo_hits"' in text
        # per-document WAL counters
        assert 'repro_wal_appends_total{doc="doc2"} 2' in text
        assert 'repro_wal_last_seq{doc="doc2"} 2' in text
        # serving gauges
        assert "repro_server_draining 0" in text

    def test_healthz_and_stats_routes(self, store_root):
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            results = {}
            results["health"] = _scrape(host, port, "/healthz")
            results["stats"] = _scrape(host, port, "/stats")
            results["missing"] = _scrape(host, port, "/nope")
            return results

        results = run_with_server(server, client_work)
        assert results["health"] == (200, "ok\n")
        status, body = results["stats"]
        assert status == 200
        payload = json.loads(body)
        assert "registry" in payload and "server" in payload
        assert results["missing"][0] == 404

    def test_errors_are_counted_by_code(self, store_root):
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                for _ in range(3):
                    try:
                        client.view("ghost")
                    except RemoteServingError:
                        pass
            return _scrape(host, port)[1]

        text = run_with_server(server, client_work)
        assert (
            'repro_server_errors_total{code="unknown_document",endpoint="view"} 3'
            in text
        )


class TestGracefulDrain:
    def test_inflight_request_finishes_before_sessions_close(
        self, store_root, workload, monkeypatch
    ):
        """SIGTERM semantics: a request already being served completes
        (and its response flushes) before any session closes or lease
        releases; requests arriving during the drain are refused with a
        typed payload."""
        term = sequential_updates(workload, 1, seed=3)[0]
        server = ReproServer(store_root=store_root, fsync="off")

        original = handlers.HANDLERS["propagate"]
        entered = threading.Event()

        async def slow_propagate(srv, request):
            entered.set()
            await asyncio.sleep(0.3)
            return await original(srv, request)

        monkeypatch.setitem(handlers.HANDLERS, "propagate", slow_propagate)
        done_order = []

        async def main():
            host, port = await server.start()
            loop = asyncio.get_running_loop()

            def slow_client():
                with ServeClient(host, port) as client:
                    result = client.propagate("doc3", term)
                    done_order.append("response_received")
                    return result

            slow = loop.run_in_executor(None, slow_client)
            await loop.run_in_executor(None, entered.wait, 10)
            drain = asyncio.ensure_future(server.drain())
            result = await slow
            await drain
            done_order.append("drain_returned")
            return result

        result = asyncio.run(main())
        assert result["seq"] == 1
        assert done_order == ["response_received", "drain_returned"]
        log = server.drain_log
        assert log.index("requests_drained") < log.index("sessions_closed")
        assert log.index("sessions_closed") < log.index("stores_closed")

    def test_drain_refuses_new_requests(self, store_root):
        server = ReproServer(store_root=store_root, fsync="off")

        async def main():
            host, port = await server.start()
            loop = asyncio.get_running_loop()

            def connect():
                return ServeClient(host, port)

            client = await loop.run_in_executor(None, connect)
            drain = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0)  # let the drain flip the flag

            def late_request():
                try:
                    client.ping()
                    return "served"
                except Exception as error:
                    return error
                finally:
                    client.close()

            outcome = await loop.run_in_executor(None, late_request)
            await drain
            return outcome

        outcome = asyncio.run(main())
        # either the typed draining refusal, or the socket was already
        # gone — never a silently served request
        if isinstance(outcome, RemoteServingError):
            assert outcome.code == "server_failed"
            assert "draining" in str(outcome)
        else:
            assert not isinstance(outcome, str)
