"""Kill the served process mid-stream, recover from the WAL.

The server is a real ``repro-xml serve`` subprocess speaking the real
wire. Every acknowledged propagation must survive SIGKILL — recovery
replays the WAL to exactly the state the in-process differential
produces from the same acknowledged scripts, byte-identical. SIGTERM,
by contrast, drains: the process exits 0 after closing sessions and
releasing leases.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.editing import EditScript
from repro.engine import ViewEngine
from repro.server import ServeClient
from repro.store import DocumentStore
from repro.store.lease import lease_path

from .conftest import sequential_updates

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn_server(store_root, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--root",
            str(store_root),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("serving on "), (line, process.stderr.read())
    host, port = line.removeprefix("serving on ").rsplit(":", 1)
    return process, host, int(port)


@pytest.fixture
def served_store(tmp_path, workload):
    store = DocumentStore.init(tmp_path / "store", fsync="always")
    store.put("doc", workload.source, workload.dtd, workload.annotation)
    store.close()
    return tmp_path / "store"


class TestKillRecovery:
    def test_sigkill_mid_stream_recovers_acknowledged_state(
        self, served_store, workload
    ):
        terms = sequential_updates(workload, 5, seed=41)
        process, host, port = _spawn_server(served_store, "--fsync", "always")
        acked = []
        try:
            with ServeClient(host, port) as client:
                for term in terms[:3]:  # leave the stream unfinished
                    result = client.propagate("doc", term)
                    acked.append((result["seq"], result["script"]))
        finally:
            process.kill()  # SIGKILL: no drain, no lease release
            process.wait(timeout=30)

        assert [seq for seq, _ in acked] == [1, 2, 3]

        # the in-process differential: replay the same acknowledged
        # updates through a fresh session
        engine = ViewEngine(workload.dtd, workload.annotation)
        session = engine.session(workload.source)
        expected_scripts = [
            session.propagate(EditScript.parse(term)).to_term()
            for term in terms[:3]
        ]
        assert [script for _, script in acked] == expected_scripts

        # recovery from the WAL alone reproduces that state byte for byte
        store = DocumentStore(served_store, fsync="off")
        recovered = store.recover("doc")
        assert recovered.last_seq == 3
        assert recovered.tree.to_term() == session.source.to_term()
        # and the store serves on: a new session picks up at seq 4
        with store.open_session("doc") as resumed:
            script = resumed.propagate(EditScript.parse(terms[3]))
            assert resumed.last_seq == 4
            assert script.cost >= 0
        store.close()

    def test_sigterm_drains_and_releases_the_lease(self, served_store, workload):
        term = sequential_updates(workload, 1, seed=43)[0]
        process, host, port = _spawn_server(served_store, "--fsync", "always")
        try:
            with ServeClient(host, port) as client:
                client.propagate("doc", term)
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        except BaseException:
            process.kill()
            raise
        assert process.returncode == 0, (out, err)
        assert "drained" in out
        # the lease went back: nobody owns the document
        lease_file = lease_path(served_store / "docs" / "doc")
        if lease_file.exists():
            import json

            assert json.loads(lease_file.read_text()).get("owner") is None

    def test_kill_leaves_lease_fencing_to_the_next_writer(
        self, served_store, workload
    ):
        """A SIGKILLed server cannot release its lease — the next writer
        must be able to take over by epoch bump, not hang."""
        term = sequential_updates(workload, 1, seed=44)[0]
        process, host, port = _spawn_server(served_store, "--fsync", "always")
        try:
            with ServeClient(host, port) as client:
                client.propagate("doc", term)
        finally:
            process.kill()
            process.wait(timeout=30)
        store = DocumentStore(served_store, fsync="off")
        with store.open_session("doc") as session:  # acquires by epoch bump
            assert session.last_seq == 1
        store.close()


class TestServeCliSurface:
    def test_serve_is_wired_into_the_cli(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--root", "/tmp/x", "--port", "0", "--max-lag", "2"]
        )
        assert args.handler.__name__ == "_cmd_serve"
        assert args.max_lag == 2
