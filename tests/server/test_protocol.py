"""The wire framing: WAL discipline applied to request/response JSON.

Torn final message = peer death, wait for the rest; damaged interior
message = drop the connection. Exactly the log's failure model.
"""

import zlib

import pytest

from repro.errors import ProtocolError
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    decode_messages,
    encode_message,
)


class TestFraming:
    def test_roundtrip(self):
        wire = encode_message({"op": "ping", "id": 7})
        messages, consumed = decode_messages(wire)
        assert messages == [{"op": "ping", "id": 7}]
        assert consumed == len(wire)

    def test_multiple_messages_in_one_buffer(self):
        wire = b"".join(encode_message({"n": n}) for n in range(5))
        messages, consumed = decode_messages(wire)
        assert [m["n"] for m in messages] == [0, 1, 2, 3, 4]
        assert consumed == len(wire)

    def test_header_is_self_describing(self):
        wire = encode_message({"a": 1})
        header, body, trailer = wire.split(b"\n", 2)
        tag, length, crc = header.split(b" ")
        assert tag == b"M"
        assert int(length) == len(body)
        assert int(crc) == zlib.crc32(body)

    def test_torn_final_message_stays_unconsumed(self):
        wire = encode_message({"op": "ping"})
        for cut in range(1, len(wire)):
            messages, consumed = decode_messages(wire[:cut])
            assert messages == []
            assert consumed == 0

    def test_torn_tail_after_complete_prefix(self):
        first = encode_message({"n": 1})
        second = encode_message({"n": 2})
        data = first + second[:-3]
        messages, consumed = decode_messages(data)
        assert [m["n"] for m in messages] == [1]
        assert consumed == len(first)

    def test_interior_corruption_is_fatal(self):
        first = bytearray(encode_message({"n": 1}))
        first[len(first) // 2] ^= 0xFF  # flip a payload byte
        data = bytes(first) + encode_message({"n": 2})
        with pytest.raises(ProtocolError, match="checksum|header|payload"):
            decode_messages(data)

    def test_garbage_header_is_fatal(self):
        with pytest.raises(ProtocolError, match="header"):
            decode_messages(b"GET /metrics HTTP/1.1\nmore\n")

    def test_non_object_payload_is_refused(self):
        body = b"[1, 2]"
        wire = (
            f"M {len(body)} {zlib.crc32(body)}\n".encode() + body + b"\n"
        )
        with pytest.raises(ProtocolError, match="not an object"):
            decode_messages(wire)

    def test_oversized_declaration_is_refused(self):
        wire = f"M {MAX_MESSAGE_BYTES + 1} 0\n".encode() + b"x"
        with pytest.raises(ProtocolError, match="frame limit"):
            decode_messages(wire)
