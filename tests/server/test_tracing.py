"""Served tracing: trace_id round trips, the /debug surfaces, and the
per-standby shipped-lag gauge."""

import json
import random

import pytest

from repro import obs
from repro.engine import ViewEngine
from repro.generators.updates import random_view_update
from repro.replication import QueueTransport, StandbyStore, WalShipper
from repro.server import RemoteServingError, ReproServer, ServeClient
from repro.store import DocumentStore

from .conftest import run_with_server, sequential_updates


def _scrape(host, port, path):
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


@pytest.fixture
def tracer():
    """The process default tracer (the one handlers record to),
    enabled for the test and restored to disabled afterwards."""
    t = obs.configure(
        enabled=True, sample_rate=1.0, slow_threshold=60.0, keep=64
    )
    t.reset()
    yield t
    t.reset()
    obs.configure(enabled=False)


def span_names(span_dict, depth=0):
    yield depth, span_dict["name"]
    for child in span_dict.get("children", []):
        yield from span_names(child, depth + 1)


class TestServedTraces:
    def test_propagate_trace_tree_is_retrievable_by_trace_id(
        self, tracer, tmp_path, workload
    ):
        # fsync="always" so the journal subtree shows a real fsync span
        store = DocumentStore.init(tmp_path / "traced", fsync="always")
        store.put("doc0", workload.source, workload.dtd, workload.annotation)
        store.close()
        terms = sequential_updates(workload, 1, seed=3)
        server = ReproServer(store_root=tmp_path / "traced", fsync="always")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                client.propagate("doc0", terms[0])
                trace_id = client.last_trace_id
            assert trace_id
            status, body = _scrape(
                host, port, f"/debug/traces?trace_id={trace_id}"
            )
            assert status == 200
            return trace_id, json.loads(body)

        trace_id, payload = run_with_server(server, client_work)
        assert payload["found"] is True
        record = payload["trace"]
        assert record["trace_id"] == trace_id
        tree = list(span_names(record["root"]))
        names = [name for _, name in tree]
        # the acceptance tree: request → engine.propagate → stages,
        # and the journal's WAL spans
        assert tree[0] == (0, "request")
        engine_depth = next(d for d, n in tree if n == "engine.propagate")
        for stage in ("validate", "graphs", "script"):
            assert (engine_depth + 1, stage) in tree
        journal_depth = next(d for d, n in tree if n == "session.journal")
        assert (journal_depth + 1, "wal.append") in tree
        assert (journal_depth + 1, "fsync") in tree
        assert "seq" not in names  # sanity: names, not attrs

    def test_client_trace_id_round_trips_through_the_error_envelope(
        self, tracer, store_root
    ):
        server = ReproServer(store_root=store_root, fsync="off")
        supplied = "deadbeefdeadbeef"

        def client_work(host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(RemoteServingError) as excinfo:
                    client.view("ghost", trace_id=supplied)
                return client.last_trace_id, excinfo.value

        envelope_id, error = run_with_server(server, client_work)
        assert envelope_id == supplied
        assert error.trace_id == supplied
        assert error.payload["trace_id"] == supplied
        assert supplied in str(error)
        # the failed request was kept (errors escape sampling) and is
        # findable under the *client's* id
        record = tracer.find(supplied)
        assert record is not None and record["error"] is not None

    def test_trace_id_echo_survives_tracing_disabled(self, store_root):
        assert not obs.tracing_enabled()
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                client.ping()
                untraced = client.last_trace_id
                client.request("ping", trace_id="cafe0001cafe0001")
                return untraced, client.last_trace_id

        untraced, echoed = run_with_server(server, client_work)
        assert untraced is None  # no tracer, no id invented
        assert echoed == "cafe0001cafe0001"  # correlation still works

    def test_debug_slow_surfaces_over_threshold_requests(
        self, tracer, store_root, workload
    ):
        tracer.configure(slow_threshold=0.0)  # everything is "slow"
        terms = sequential_updates(workload, 1, seed=9)
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                client.propagate("doc1", terms[0])
            status, body = _scrape(host, port, "/debug/slow?limit=5")
            assert status == 200
            return json.loads(body)

        payload = run_with_server(server, client_work)
        assert payload["threshold_ms"] == 0.0
        assert payload["slow"], "over-threshold trace missing from /debug/slow"
        assert payload["slow"][0]["slow"] is True
        assert payload["tracing"]["slow"] >= 1

    def test_stats_gain_a_tracing_section(self, tracer, store_root, workload):
        terms = sequential_updates(workload, 1, seed=13)
        server = ReproServer(store_root=store_root, fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                client.propagate("doc3", terms[0])
                framed = client.stats()
            status, body = _scrape(host, port, "/stats")
            assert status == 200
            return framed, json.loads(body)

        framed, http_stats = run_with_server(server, client_work)
        for payload in (framed, http_stats):
            tracing = payload["tracing"]
            assert tracing["enabled"] is True
            assert tracing["kept"] >= 1
            assert {"started", "dropped", "slow_log_size"} <= set(tracing)


class TestShippedLagGauge:
    def _primary_with_updates(self, tmp_path, workload, steps=3):
        store = DocumentStore.init(tmp_path / "primary", fsync="off")
        store.put("doc", workload.source, workload.dtd, workload.annotation)
        rng = random.Random(31)
        engine = ViewEngine(workload.dtd, workload.annotation)
        with store.open_session("doc", engine=engine) as session:
            for _ in range(steps):
                session.propagate(
                    random_view_update(
                        rng, workload.dtd, workload.annotation,
                        session.source, n_ops=2,
                    )
                )
        return store

    def test_metrics_export_per_standby_lag(self, tmp_path, workload):
        store = self._primary_with_updates(tmp_path, workload)
        standby = StandbyStore.init(
            tmp_path / "standby", primary_root=tmp_path / "primary"
        )
        shipper = WalShipper(store, QueueTransport()).resume_from(standby)
        assert shipper.lag() == {"doc": 3}  # nothing shipped yet

        server = ReproServer(store_root=tmp_path / "primary", fsync="off")
        server.attach_shipper(shipper)
        label = str(standby.root)
        text = server.metrics_text()
        assert (
            f'repro_shipper_lag{{doc="doc",standby="{label}"}} 3' in text
        )
        assert f'repro_shipper_records_total{{standby="{label}"}} 0' in text

        shipper.ship_all()
        text = server.metrics_text()
        assert (
            f'repro_shipper_lag{{doc="doc",standby="{label}"}} 0' in text
        )
        assert "shippers" in server.stats_payload()
        standby.close()
        store.close()
