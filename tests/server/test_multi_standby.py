"""Freshest-standby routing: several followed standbys behind one
server, bounded reads go to the replica with the smallest measured
post-refresh lag — unmeasurable lag fails closed, ties keep
registration order, the primary stays the fallback of last resort."""

import pytest

from repro.replication import StandbyStore, replicate
from repro.server import ReproServer, RemoteServingError, ServeClient
from repro.store import DocumentStore

from .conftest import run_with_server, sequential_updates


def _advance(store_root, workload, steps, seed):
    """Serve *steps* more updates onto doc0 through a store session."""
    store = DocumentStore(store_root, fsync="off")
    with store.open_session("doc0") as session:
        for term in sequential_updates(workload, steps, seed=seed):
            from repro.editing import EditScript

            session.propagate(EditScript.parse(term))
    store.close()


def _standby(tmp_path, store_root, name, *, primary_root=True):
    standby = StandbyStore.init(
        tmp_path / name, primary_root=store_root if primary_root else None
    )
    store = DocumentStore(store_root, fsync="off")
    replicate(store, standby)
    store.close()
    standby.close()
    return tmp_path / name


class TestFreshestRouting:
    def test_tie_keeps_registration_order(self, tmp_path, store_root):
        roots = [
            _standby(tmp_path, store_root, "sby0"),
            _standby(tmp_path, store_root, "sby1"),
        ]
        server = ReproServer(
            store_root=store_root, standby_root=roots, fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.view("doc0", max_lag=0)

        result = run_with_server(server, client_work)
        assert result["served_by"] == "replica"
        assert result["standby"] == 0  # both at lag 0: first registered
        assert result["lag"] == 0

    def test_freshest_wins_not_first(self, tmp_path, store_root, workload):
        """sby0 registered first but left 2 records behind; sby1 caught
        up. Both honour the budget — the *fresher* one serves."""
        stale = _standby(tmp_path, store_root, "sby0")
        _advance(store_root, workload, steps=2, seed=5)
        fresh = _standby(tmp_path, store_root, "sby1")
        server = ReproServer(
            store_root=store_root, standby_root=[stale, fresh], fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.view("doc0", max_lag=10)

        result = run_with_server(server, client_work)
        assert result["served_by"] == "replica"
        assert result["standby"] == 1
        assert result["lag"] == 0

    def test_budget_excludes_the_stale_one(self, tmp_path, store_root, workload):
        stale = _standby(tmp_path, store_root, "sby0")
        _advance(store_root, workload, steps=2, seed=5)
        fresh = _standby(tmp_path, store_root, "sby1")
        server = ReproServer(
            store_root=store_root, standby_root=[stale, fresh], fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                bounded = client.view("doc0", max_lag=0)
                loose = client.view("doc0", max_lag=2)
            return bounded, loose

        bounded, loose = run_with_server(server, client_work)
        assert (bounded["served_by"], bounded["standby"]) == ("replica", 1)
        assert (loose["served_by"], loose["standby"]) == ("replica", 1)

    def test_unmeasurable_lag_sorts_last_and_fails_closed(
        self, tmp_path, store_root
    ):
        """A dark standby (no primary marker, lag unmeasurable) is never
        preferred: the measurable replica serves bounded reads, and with
        *only* dark replicas the bounded read falls to the primary."""
        dark = _standby(tmp_path, store_root, "dark", primary_root=False)
        fresh = _standby(tmp_path, store_root, "sby1")
        server = ReproServer(
            store_root=store_root, standby_root=[dark, fresh], fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.view("doc0", max_lag=0)

        result = run_with_server(server, client_work)
        assert (result["served_by"], result["standby"]) == ("replica", 1)

    def test_all_over_budget_falls_back_to_primary(
        self, tmp_path, store_root, workload
    ):
        roots = [
            _standby(tmp_path, store_root, "sby0"),
            _standby(tmp_path, store_root, "sby1"),
        ]
        _advance(store_root, workload, steps=3, seed=5)  # both now lag 3
        server = ReproServer(
            store_root=store_root, standby_root=roots, fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.view("doc0", max_lag=1)

        result = run_with_server(server, client_work)
        assert result["served_by"] == "primary"
        assert server.replica_fallbacks == {"doc0": 1}

    def test_standby_only_server_surfaces_the_lag_error(
        self, tmp_path, store_root, workload
    ):
        roots = [
            _standby(tmp_path, store_root, "sby0"),
            _standby(tmp_path, store_root, "sby1"),
        ]
        _advance(store_root, workload, steps=3, seed=5)
        server = ReproServer(standby_root=roots)

        def client_work(host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(RemoteServingError) as caught:
                    client.view("doc0", max_lag=1)
            return caught.value

        error = run_with_server(server, client_work)
        assert error.payload["code"] == "replication_lag"

    def test_partial_doc_coverage_skips_the_missing_standby(
        self, tmp_path, store_root
    ):
        """sby0 only carries doc1: reads of doc0 must route to sby1
        without tripping over the standby that never bootstrapped it."""
        partial = tmp_path / "sby0"
        standby = StandbyStore.init(partial, primary_root=store_root)
        store = DocumentStore(store_root, fsync="off")
        replicate(store, standby, doc_ids=["doc1"])
        store.close()
        standby.close()
        full = _standby(tmp_path, store_root, "sby1")
        server = ReproServer(
            store_root=store_root, standby_root=[partial, full], fsync="off"
        )

        def client_work(host, port):
            with ServeClient(host, port) as client:
                doc0 = client.view("doc0", max_lag=0)
                doc1 = client.view("doc1", max_lag=0)
            return doc0, doc1

        doc0, doc1 = run_with_server(server, client_work)
        assert (doc0["served_by"], doc0["standby"]) == ("replica", 1)
        assert doc1["served_by"] == "replica"
        assert doc1["standby"] in (0, 1)  # both carry doc1; 0 is first

    def test_single_standby_argument_still_works(self, tmp_path, store_root):
        """Back-compat: a bare (non-list) standby_root behaves exactly
        as before the multi-standby extension."""
        root = _standby(tmp_path, store_root, "sby0")
        server = ReproServer(store_root=store_root, standby_root=root, fsync="off")

        def client_work(host, port):
            with ServeClient(host, port) as client:
                return client.view("doc0", max_lag=0)

        result = run_with_server(server, client_work)
        assert (result["served_by"], result["standby"]) == ("replica", 0)
