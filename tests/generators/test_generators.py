"""Tests for generators: exhaustive enumeration, random trees, workloads."""

import random

import pytest

from repro.core import propagate, validate_view_update, verify_propagation
from repro.dtd import DTD, minimal_size
from repro.generators import (
    enumerate_shapes,
    enumerate_trees,
    enumerate_words_weighted,
    random_annotation,
    random_dtd,
    random_regex,
    random_tree,
    random_view_update,
)
from repro.generators.workloads import (
    catalog,
    deep_document,
    hospital,
    positional,
    running_example,
)
from repro.automata import glushkov


class TestEnumerateWordsWeighted:
    def test_all_words_within_budget(self):
        dtd = DTD({"r": "(a,b)*"})
        model = dtd.automaton("r")
        words = list(enumerate_words_weighted(model, {"a": 1, "b": 1}, 4))
        assert words == [(), ("a", "b"), ("a", "b", "a", "b")]

    def test_weights_respected(self):
        dtd = DTD({"r": "(a|b)+"})
        model = dtd.automaton("r")
        words = set(enumerate_words_weighted(model, {"a": 3, "b": 1}, 3))
        assert ("a",) in words
        assert ("b", "b", "b") in words
        assert ("a", "b") not in words  # cost 4

    def test_empty_when_budget_too_small(self):
        dtd = DTD({"r": "a,a"})
        model = dtd.automaton("r")
        assert list(enumerate_words_weighted(model, {"a": 2}, 3)) == []


class TestEnumerateTrees:
    def test_exhaustive_small_language(self):
        dtd = DTD({"r": "a?,b?"})
        shapes = list(enumerate_shapes(dtd, "r", 3))
        assert len(shapes) == 4  # r, r(a), r(b), r(a,b)

    def test_all_valid_and_within_budget(self):
        dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
        trees = list(enumerate_trees(dtd, "r", 6))
        assert trees
        for tree in trees:
            assert dtd.validates(tree)
            assert tree.size <= 6
            assert tree.label(tree.root) == "r"

    def test_sizes_nondecreasing(self):
        dtd = DTD({"r": "(a|b)*"})
        sizes = [t.size for t in enumerate_trees(dtd, "r", 4)]
        assert sizes == sorted(sizes)

    def test_count_matches_closed_form(self):
        # r → (a|b)*: trees with k children = 2^k shapes
        dtd = DTD({"r": "(a|b)*"})
        shapes = list(enumerate_shapes(dtd, "r", 4))
        assert len(shapes) == 1 + 2 + 4 + 8

    def test_min_size_tree_present(self):
        dtd = DTD({"r": "x,x", "x": "y", "y": ""})
        trees = list(enumerate_trees(dtd, "r", minimal_size(dtd, "r")))
        assert len(trees) == 1
        assert trees[0].size == minimal_size(dtd, "r")


class TestRandomRegexAndDTD:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_regex_compiles(self, seed):
        rng = random.Random(seed)
        expr = random_regex(rng, ["x", "y", "z"])
        nfa = glushkov(expr)
        assert nfa.language_nonempty() or expr.nullable()

    @pytest.mark.parametrize("seed", range(10))
    def test_random_dtd_usable_end_to_end(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, 4)
        annotation = random_annotation(rng, dtd, 0.3)
        source = random_tree(dtd, rng, root_label="l0", size_hint=10)
        update = random_view_update(rng, dtd, annotation, source, n_ops=2)
        validate_view_update(dtd, annotation, source, update)

    def test_random_tree_size_tracks_hint(self):
        rng = random.Random(0)
        dtd = DTD({"r": "(a)*"})
        small = random_tree(dtd, rng, root_label="r", size_hint=3)
        large = random_tree(dtd, rng, root_label="r", size_hint=60)
        assert small.size < large.size

    def test_random_tree_unknown_root_rejected(self):
        from repro.errors import UnknownLabelError

        with pytest.raises(UnknownLabelError):
            random_tree(DTD({"r": "a*"}), random.Random(0), root_label="zz")


WORKLOADS = [
    lambda: running_example(2),
    lambda: running_example(5),
    lambda: hospital(6),
    lambda: catalog(6),
    lambda: positional(3),
    lambda: deep_document(4),
]


class TestWorkloads:
    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_workload_is_valid_instance(self, factory):
        workload = factory()
        assert workload.dtd.validates(workload.source)
        validate_view_update(
            workload.dtd, workload.annotation, workload.source, workload.update
        )

    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_workload_propagates(self, factory):
        workload = factory()
        script = propagate(
            workload.dtd, workload.annotation, workload.source, workload.update
        )
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source, workload.update, script
        )

    def test_running_example_scales(self):
        small, big = running_example(2), running_example(8)
        assert big.source.size > small.source.size

    def test_hospital_hides_diagnoses(self):
        workload = hospital(6)
        view = workload.view
        hidden_labels = {
            workload.source.label(n)
            for n in workload.source.nodes()
            if n not in view.node_set
        }
        assert hidden_labels <= {"diagnosis", "bill"}

    def test_catalog_forces_hidden_margin_invention(self):
        workload = catalog(6)
        script = propagate(
            workload.dtd, workload.annotation, workload.source, workload.update
        )
        new_products = [
            node
            for node in script.output_tree.nodes()
            if script.output_tree.label(node) == "product"
            and node not in workload.source.node_set
        ]
        assert new_products
        for product in new_products:
            labels = script.output_tree.child_labels(product)
            assert "margin" in labels  # invented hidden mandatory field

    def test_positional_update_appends_after_existing(self):
        workload = positional(2)
        out = workload.update.output_tree
        kids = out.children(out.root)
        assert kids[1] == "u0"  # inserted right after the first c
