"""The ``huge_document`` workload: the sharding benchmark's shape."""

import pytest

from repro.generators.workloads import huge_document
from repro.registry import default_registry


class TestHugeDocument:
    def test_is_valid_and_hits_the_size_target(self):
        for target in (100, 2_000, 10_000):
            w = huge_document(target)
            assert w.source.size >= target
            assert w.source.size <= target + 50  # at most one extra chapter
            assert w.dtd.validates(w.source)

    def test_scaling_grows_chapter_count_not_chapter_size(self):
        small = huge_document(1_000)
        large = huge_document(10_000)
        small_chapters = small.source.children(small.source.root)
        large_chapters = large.source.children(large.source.root)
        assert len(large_chapters) > 5 * len(small_chapters)
        biggest = max(
            large.source.subtree(c).size for c in large_chapters
        )
        assert biggest < 60  # chapters stay bounded as the book grows

    def test_deterministic(self):
        assert (
            huge_document(3_000).source.to_term()
            == huge_document(3_000).source.to_term()
        )
        assert (
            huge_document(3_000).update.to_term()
            == huge_document(3_000).update.to_term()
        )

    def test_update_is_interior_and_valid(self):
        w = huge_document(2_000)
        engine = default_registry().get_or_compile(w.dtd, w.annotation)
        script = engine.session(w.source).propagate(w.update)
        assert script.cost > 0

    def test_hides_metadata_and_notes(self):
        w = huge_document(500)
        view = w.annotation.view(w.source)
        labels = {view.label(n) for n in view.nodes()}
        assert "meta" not in labels and "note" not in labels
        assert {"book", "chapter", "section", "para", "title"} <= labels

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            huge_document(1)
