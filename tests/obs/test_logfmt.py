"""Structured JSON logs: one parseable line, trace-correlated."""

import io
import json
import logging

from repro import obs
from repro.obs import JsonLogFormatter, enable_json_logs


def fresh_logger(name, stream):
    logger = logging.getLogger(name)
    logger.propagate = False
    handler = enable_json_logs(stream=stream, logger=logger)
    return logger, handler


class TestJsonLogFormatter:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger, handler = fresh_logger("t.obs.basic", stream)
        try:
            logger.info("served %d docs", 3)
            logger.warning("slow")
        finally:
            logger.removeHandler(handler)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["msg"] == "served 3 docs"
        assert first["level"] == "info"
        assert first["logger"] == "t.obs.basic"
        assert second["level"] == "warning"
        assert "ts" in first and "iso" in first

    def test_extra_fields_land_in_the_payload(self):
        stream = io.StringIO()
        logger, handler = fresh_logger("t.obs.extra", stream)
        try:
            logger.info("journalled", extra={"doc": "doc0", "seq": 7})
        finally:
            logger.removeHandler(handler)
        payload = json.loads(stream.getvalue())
        assert payload["doc"] == "doc0" and payload["seq"] == 7

    def test_trace_correlation_when_a_span_is_open(self, tracer):
        stream = io.StringIO()
        logger, handler = fresh_logger("t.obs.corr", stream)
        try:
            with obs.trace("req") as root:
                with obs.span("stage") as stage:
                    logger.info("inside")
            logger.info("outside")
        finally:
            logger.removeHandler(handler)
        inside, outside = (
            json.loads(line) for line in stream.getvalue().strip().splitlines()
        )
        assert inside["trace_id"] == root.trace_id
        assert inside["span_id"] == stage.span_id
        assert "trace_id" not in outside

    def test_exceptions_are_rendered_inline(self):
        stream = io.StringIO()
        logger, handler = fresh_logger("t.obs.exc", stream)
        try:
            try:
                raise RuntimeError("kaboom")
            except RuntimeError:
                logger.exception("failed")
        finally:
            logger.removeHandler(handler)
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "error"
        assert "RuntimeError: kaboom" in payload["exc"]

    def test_enable_is_idempotent_per_logger(self):
        stream = io.StringIO()
        logger = logging.getLogger("t.obs.idem")
        logger.propagate = False
        first = enable_json_logs(stream=stream, logger=logger)
        second = enable_json_logs(stream=stream, logger=logger)
        try:
            assert first is second
            assert sum(
                isinstance(h.formatter, JsonLogFormatter)
                for h in logger.handlers
            ) == 1
        finally:
            logger.removeHandler(first)

    def test_span_logging_emits_one_line_per_span(self, tracer):
        stream = io.StringIO()
        logger = logging.getLogger("repro.trace")
        logger.propagate = False
        handler = enable_json_logs(stream=stream, logger=logger)
        tracer.configure(log_spans=True)
        try:
            with obs.trace("req") as root:
                with obs.span("stage.a"):
                    pass
        finally:
            tracer.configure(log_spans=False)
            logger.removeHandler(handler)
        lines = [json.loads(line) for line in stream.getvalue().strip().splitlines()]
        assert len(lines) == 2  # stage.a, then the root
        assert lines[0]["span"] == "stage.a"
        assert lines[1]["span"] == "req"
        assert all(line["trace"] == root.trace_id for line in lines)
        assert all("duration_ms" in line for line in lines)
