"""Property: a span's interval provably nests inside its parent's.

Spans time with ``perf_counter`` and a child is entered after and
exited before its parent by construction, so for every generated tree
shape the serialized offsets must satisfy strict containment — no
epsilon, no clock skew excuses.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs

pytestmark = pytest.mark.property

# arbitrary finite tree shapes: each node is a list of child shapes
shapes = st.recursive(
    st.just([]),
    lambda children: st.lists(children, max_size=3),
    max_leaves=12,
)


def open_spans(shape, index=0):
    """Enter one span per node, depth-first, doing a little work in
    each so durations are non-trivial."""
    with obs.span(f"n{index}"):
        acc = sum(range(50))
        for offset, child in enumerate(shape):
            open_spans(child, index * 10 + offset + 1)
        return acc


def assert_nested(node):
    start = node["offset_ms"]
    end = start + node["duration_ms"]
    assert node["duration_ms"] >= 0.0
    previous_start = start
    for child in node.get("children", []):
        child_start = child["offset_ms"]
        child_end = child_start + child["duration_ms"]
        assert start <= child_start, "child started before its parent"
        assert child_end <= end, "child outlived its parent"
        assert previous_start <= child_start, "siblings out of order"
        previous_start = child_start
        assert_nested(child)


@settings(max_examples=60, deadline=None)
@given(shape=shapes)
def test_every_span_interval_nests_inside_its_parent(shape):
    tracer = obs.configure(enabled=True, sample_rate=1.0, slow_threshold=60.0)
    tracer.reset()
    try:
        with obs.trace("root") as root:
            open_spans(shape)
        record = tracer.find(root.trace_id)
        assert record is not None
        assert_nested(record["root"])
        # the whole tree serialized: one span per generated node + root

        def count(node):
            return 1 + sum(count(c) for c in node.get("children", []))

        def shape_count(s):
            return 1 + sum(shape_count(c) for c in s)

        assert count(record["root"]) == 1 + shape_count(shape)
    finally:
        tracer.reset()
        obs.configure(enabled=False)
