"""The tracing core: span nesting, sampling policy, ring buffers, and
the instrumentation hooks threaded through engine, store, and pool."""

import random

import pytest

from repro import obs
from repro.engine import ViewEngine
from repro.generators.updates import random_view_update
from repro.generators.workloads import running_example
from repro.obs.trace import NOOP_SPAN, Tracer


def span_names(span_dict, depth=0):
    yield depth, span_dict["name"]
    for child in span_dict.get("children", []):
        yield from span_names(child, depth + 1)


def flat_names(span_dict):
    return [name for _, name in span_names(span_dict)]


class TestDisabledFastPath:
    def test_disabled_helpers_return_the_shared_noop(self):
        assert not obs.tracing_enabled()
        assert obs.span("x") is NOOP_SPAN
        assert obs.trace("x") is NOOP_SPAN
        assert obs.child_span("x") is NOOP_SPAN

    def test_noop_span_swallows_the_whole_api(self):
        with obs.span("x") as span:
            span.set(a=1).mark_error("boom")
            span.adopt({"name": "remote"})
            assert span.export() is None
            assert span.trace_id is None
            assert not span.recording

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("x"):
            pass
        assert t.stats_payload()["started"] == 0
        assert t.recent() == []


class TestSpanTrees:
    def test_nested_spans_build_one_trace(self, tracer):
        with obs.trace("request") as root:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            with obs.span("sibling"):
                pass
        record = tracer.find(root.trace_id)
        assert record is not None
        assert flat_names(record["root"]) == [
            "request", "outer", "inner", "sibling",
        ]

    def test_child_intervals_nest_inside_the_parent(self, tracer):
        with obs.trace("r") as root:
            with obs.span("a"):
                with obs.span("b"):
                    sum(range(1000))
        rec = tracer.find(root.trace_id)["root"]

        def check(parent):
            p0 = parent["offset_ms"]
            p1 = p0 + parent["duration_ms"]
            for child in parent.get("children", []):
                c0 = child["offset_ms"]
                c1 = c0 + child["duration_ms"]
                assert p0 <= c0 and c1 <= p1
                check(child)

        check(rec)

    def test_current_span_follows_the_context(self, tracer):
        assert obs.current_span() is None
        with obs.trace("r") as root:
            assert obs.current_span() is root
            with obs.span("child") as child:
                assert obs.current_span() is child
            assert obs.current_span() is root
        assert obs.current_span() is None

    def test_child_span_needs_an_ambient_parent(self, tracer):
        assert obs.child_span("orphan") is NOOP_SPAN
        assert tracer.stats_payload()["started"] == 0
        with obs.trace("r"):
            with obs.child_span("ok") as span:
                assert span.recording

    def test_explicit_parent_attaches_across_threads(self, tracer):
        import threading

        with obs.trace("fanout") as root:
            def work():
                # a plain thread has no ambient context — the explicit
                # parent is what keeps the span in the trace
                with obs.span("worker", parent=root):
                    pass
            t = threading.Thread(target=work)
            t.start()
            t.join()
        rec = tracer.find(root.trace_id)
        assert flat_names(rec["root"]) == ["fanout", "worker"]

    def test_client_supplied_trace_id_is_adopted(self, tracer):
        with obs.trace("r", trace_id="feedface01") as root:
            assert root.trace_id == "feedface01"
        assert tracer.find("feedface01") is not None

    def test_attrs_and_adoption_serialize(self, tracer):
        with obs.trace("r", op="propagate") as root:
            with obs.span("stage") as stage:
                stage.set(memo="hit")
            root.adopt(
                {"name": "remote.chunk", "duration_ms": 1.0,
                 "wall_start": root.wall_start, "offset_ms": 0.0}
            )
        rec = tracer.find(root.trace_id)["root"]
        assert rec["attrs"] == {"op": "propagate"}
        stage_dict, remote = rec["children"]
        assert stage_dict["attrs"] == {"memo": "hit"}
        assert remote["remote"] is True and remote["name"] == "remote.chunk"


class TestSamplingPolicy:
    def test_head_sampling_drops_but_counts(self, tracer):
        tracer.configure(sample_rate=0.0)
        for _ in range(5):
            with obs.trace("r"):
                pass
        stats = tracer.stats_payload()
        assert stats["started"] == 5
        assert stats["dropped"] == 5 and stats["kept"] == 0
        assert tracer.recent() == []

    def test_errors_escape_the_sampler(self, tracer):
        tracer.configure(sample_rate=0.0)
        with pytest.raises(ValueError):
            with obs.trace("r") as root:
                raise ValueError("boom")
        stats = tracer.stats_payload()
        assert stats["kept"] == 1 and stats["errors"] == 1
        record = tracer.find(root.trace_id)
        assert record["error"] == "ValueError"

    def test_a_failed_child_flags_the_whole_trace(self, tracer):
        tracer.configure(sample_rate=0.0)
        with obs.trace("r") as root:
            try:
                with obs.span("stage"):
                    raise KeyError("inner")
            except KeyError:
                pass
        record = tracer.find(root.trace_id)
        assert record is not None and record["error"] == "KeyError"

    def test_slow_traces_escape_the_sampler_and_land_in_the_slow_log(
        self, tracer
    ):
        tracer.configure(sample_rate=0.0, slow_threshold=0.0)
        with obs.trace("r") as root:
            pass
        stats = tracer.stats_payload()
        assert stats["kept"] == 1 and stats["slow"] == 1
        assert tracer.slow()[0]["trace_id"] == root.trace_id

    def test_mark_error_keeps_a_handled_failure(self, tracer):
        tracer.configure(sample_rate=0.0)
        with obs.trace("r") as root:
            root.mark_error("bad_request")
        assert tracer.find(root.trace_id)["error"] == "bad_request"

    def test_ring_buffer_is_bounded(self, tracer):
        tracer.configure(keep=4)
        ids = []
        for _ in range(10):
            with obs.trace("r") as root:
                ids.append(root.trace_id)
        recent = tracer.recent()
        assert len(recent) == 4
        # newest first, oldest evicted
        assert [r["trace_id"] for r in recent] == list(reversed(ids[-4:]))
        assert tracer.find(ids[0]) is None

    def test_stage_totals_aggregate_across_traces(self, tracer):
        for _ in range(3):
            with obs.trace("r"):
                with obs.span("stage.a"):
                    pass
        stages = tracer.stage_seconds()
        assert stages["stage.a"][0] == 3
        assert stages["r"][0] == 3
        assert stages["stage.a"][1] >= 0.0

    def test_random_sampling_is_seed_stable_per_rate(self, tracer):
        tracer.configure(sample_rate=0.5)
        random.seed(7)
        for _ in range(40):
            with obs.trace("r"):
                pass
        stats = tracer.stats_payload()
        assert stats["kept"] + stats["dropped"] == 40
        assert 0 < stats["kept"] < 40  # both outcomes occur at 0.5


class TestEngineInstrumentation:
    @pytest.fixture
    def workload(self):
        return running_example(3)

    @pytest.fixture
    def request_pair(self, workload):
        rng = random.Random(11)
        update = random_view_update(
            rng, workload.dtd, workload.annotation, workload.source, n_ops=2
        )
        return workload.source, update

    def test_engine_propagate_traces_its_stages(
        self, tracer, workload, request_pair
    ):
        engine = ViewEngine(workload.dtd, workload.annotation)
        source, update = request_pair
        with obs.trace("call") as root:
            engine.propagate(source, update)
        names = flat_names(tracer.find(root.trace_id)["root"])
        assert "engine.propagate" in names
        assert "validate" in names and "graphs" in names and "script" in names

    def test_memo_hit_is_visible_in_the_span(
        self, tracer, workload, request_pair
    ):
        engine = ViewEngine(workload.dtd, workload.annotation)
        source, update = request_pair
        engine.propagate(source, update)  # warm the memo

        def attrs_of(trace_id, name):
            def walk(node):
                if node["name"] == name:
                    yield node.get("attrs", {})
                for child in node.get("children", []):
                    yield from walk(child)
            return list(walk(tracer.find(trace_id)["root"]))

        with obs.trace("hit") as root:
            engine.propagate(source, update)
        (attrs,) = attrs_of(root.trace_id, "engine.propagate")
        assert attrs.get("memo") == "hit"
        # a memo hit builds neither graphs nor script
        names = flat_names(tracer.find(root.trace_id)["root"])
        assert "graphs" not in names and "script" not in names

    def test_process_pool_spans_reattach_under_the_batch_root(
        self, tracer, workload
    ):
        rng = random.Random(23)
        engine = ViewEngine(workload.dtd, workload.annotation)
        pairs = [
            (
                workload.source,
                random_view_update(
                    rng, workload.dtd, workload.annotation, workload.source,
                    n_ops=2,
                ),
            )
            for _ in range(3)
        ]
        with obs.trace("batch-request") as root:
            scripts = engine.propagate_many(
                pairs, parallel="process", workers=2
            )
        assert len(scripts) == len(pairs)
        record = tracer.find(root.trace_id)
        tree = list(span_names(record["root"]))
        names = [name for _, name in tree]
        assert "process_pool.batch" in names
        # worker-side chunk traces came home through the result envelope
        chunk_depths = [d for d, n in tree if n == "process_pool.chunk"]
        batch_depth = next(d for d, n in tree if n == "process_pool.batch")
        assert chunk_depths and all(d == batch_depth + 1 for d in chunk_depths)
        # and each chunk carries the engine stages it ran remotely
        assert any(
            n == "engine.propagate" and d > batch_depth + 1 for d, n in tree
        )


class TestDurableInstrumentation:
    def test_journal_traces_wal_append_and_fsync(self, tracer, tmp_path):
        from repro.store import DocumentStore

        workload = running_example(3)
        store = DocumentStore.init(tmp_path / "store", fsync="always")
        store.put("doc0", workload.source, workload.dtd, workload.annotation)
        rng = random.Random(5)
        session = store.open_session("doc0")
        update = random_view_update(
            rng, workload.dtd, workload.annotation, session.session.source,
            n_ops=2,
        )
        with obs.trace("write") as root:
            session.propagate(update)
        store.close()
        names = flat_names(tracer.find(root.trace_id)["root"])
        assert "session.journal" in names
        assert "wal.append" in names and "fsync" in names
