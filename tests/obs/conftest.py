"""Mark every test under ``tests/obs`` with the ``obs`` marker (CI's
server job runs ``-m "server or obs"``) and share a configured-tracer
fixture that always restores the disabled default."""

import pathlib

import pytest

from repro import obs

_HERE = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        path = getattr(item, "path", None) or getattr(item, "fspath", None)
        if path is not None and _HERE in pathlib.Path(str(path)).parents:
            item.add_marker(pytest.mark.obs)


@pytest.fixture
def tracer():
    """The default tracer, enabled with keep-everything sampling; reset
    and disabled again afterwards so the library's zero-cost default
    holds for every other test."""
    t = obs.configure(
        enabled=True,
        sample_rate=1.0,
        slow_threshold=60.0,
        keep=256,
        slow_keep=64,
        log_spans=False,
    )
    t.reset()
    yield t
    t.reset()
    obs.configure(enabled=False)
