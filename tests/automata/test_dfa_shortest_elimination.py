"""Tests for determinisation, shortest words, and state elimination."""

import pytest

from repro.automata import (
    determinize,
    glushkov,
    min_completion_costs,
    min_word,
    min_word_cost,
    minimize,
    nfa_to_regex,
    parse_regex,
    run_deterministic,
)
from repro.errors import NondeterministicAutomatonError


def A(text: str):
    return glushkov(parse_regex(text))


class TestDeterminize:
    def test_result_is_deterministic(self):
        nfa = A("(a|b)*,a")
        assert not nfa.is_deterministic()
        dfa = determinize(nfa)
        assert dfa.is_deterministic()
        assert dfa.equivalent(nfa)

    def test_preserves_language_samples(self):
        nfa = A("(a,b)|(a,c)")
        dfa = determinize(nfa)
        for word in [["a", "b"], ["a", "c"]]:
            assert dfa.accepts(word)
        assert not dfa.accepts(["a"])


class TestRunDeterministic:
    def test_visited_states(self):
        dfa = A("(a,b)*")
        visited = run_deterministic(dfa, ["a", "b"])
        assert visited is not None
        assert len(visited) == 3
        assert visited[0] == dfa.initial

    def test_stuck_returns_none(self):
        assert run_deterministic(A("a"), ["b"]) is None

    def test_nondeterministic_raises(self):
        with pytest.raises(NondeterministicAutomatonError):
            run_deterministic(A("(a|b)*,a"), ["a"])


class TestMinimize:
    def test_canonical_for_equal_languages(self):
        left = minimize(A("a,a*"))
        right = minimize(A("a+"))
        assert left.states == right.states
        assert sorted(left.transitions()) == sorted(right.transitions())
        assert left.finals == right.finals

    def test_minimal_state_count(self):
        # (a,b)* needs exactly 2 live states
        assert len(minimize(A("(a,b)*")).states) == 2

    def test_distinguishes_languages(self):
        assert not minimize(A("a*")).equivalent(minimize(A("a+")))


class TestMinWord:
    def test_unit_costs(self):
        cost, word = min_word(A("(a,(b|c),d)*"), {"a": 1, "b": 1, "c": 1, "d": 1})
        assert cost == 0 and word == ()

    def test_nonnullable(self):
        cost, word = min_word(A("a,(b|c),d"), {"a": 1, "b": 1, "c": 1, "d": 1})
        assert cost == 3
        assert word == ("a", "b", "d")  # lexicographically smallest tie

    def test_weighted_choice(self):
        cost, word = min_word(A("a|b"), {"a": 10, "b": 2})
        assert (cost, word) == (2, ("b",))

    def test_unusable_symbol_excluded(self):
        cost, word = min_word(A("a|b"), {"a": None, "b": 5})
        assert (cost, word) == (5, ("b",))

    def test_no_usable_word(self):
        assert min_word(A("a"), {"a": None}) is None
        assert min_word_cost(A("a"), {}) is None

    def test_callable_weights(self):
        cost, word = min_word(A("(a,b)+"), lambda s: 1)
        assert cost == 2

    def test_big_integer_costs(self):
        huge = 2**80
        cost, _ = min_word(A("a,a"), {"a": huge})
        assert cost == 2 * huge

    def test_deterministic_tie_break(self):
        for _ in range(5):
            _, word = min_word(A("(x|m|b),z"), {"x": 1, "m": 1, "b": 1, "z": 0})
            assert word == ("b", "z")


class TestMinCompletionCosts:
    def test_matches_min_word_cost_at_initial(self):
        nfa = A("a,(b|c),d")
        weights = {"a": 2, "b": 7, "c": 3, "d": 1}
        costs = min_completion_costs(nfa, weights)
        assert costs[nfa.initial] == min_word_cost(nfa, weights) == 6

    def test_final_states_zero(self):
        nfa = A("(a,b)*")
        costs = min_completion_costs(nfa, {"a": 1, "b": 1})
        for final in nfa.finals:
            assert costs[final] == 0

    def test_unreachable_completion_absent(self):
        nfa = A("a,b")
        costs = min_completion_costs(nfa, {"a": 1, "b": None})
        assert nfa.initial not in costs


class TestStateElimination:
    @pytest.mark.parametrize(
        "text",
        ["a", "a*", "(a,b)*", "(a,(b|c),d)*", "a|b|c", "(a,b)+", "a?,b", "((a|b),c)*"],
    )
    def test_round_trip_language(self, text: str):
        nfa = A(text)
        back = glushkov(nfa_to_regex(nfa), alphabet=nfa.alphabet)
        assert back.equivalent(nfa)

    def test_empty_language_rejected(self):
        from repro.automata import NFA

        dead = NFA(["q"], ["a"], "q", [], [])
        with pytest.raises(ValueError):
            nfa_to_regex(dead)
