"""Tests for the generic weighted-digraph machinery."""

from dataclasses import dataclass

import pytest

from repro.errors import ReproError
from repro.graphutil import (
    CycleError,
    cheapest_path,
    count_paths,
    enumerate_paths,
    greedy_path,
    min_distances,
    optimal_edges,
    reverse_adjacency,
)


@dataclass(frozen=True)
class E:
    source: str
    target: str
    weight: int
    name: str = ""


def adjacency(edges):
    table = {}
    for edge in edges:
        table.setdefault(edge.source, []).append(edge)
    return lambda v: table.get(v, ())


DIAMOND = [
    E("s", "a", 1, "sa"),
    E("s", "b", 2, "sb"),
    E("a", "t", 2, "at"),
    E("b", "t", 1, "bt"),
    E("a", "b", 0, "ab"),
]


class TestMinDistances:
    def test_exact_values(self):
        dist = min_distances(["s"], adjacency(DIAMOND))
        assert dist["b"] == 1  # s->a->b with the 0-weight edge
        assert dist["t"] == 2  # s->a->b->t

    def test_multiple_sources(self):
        dist = min_distances(["a", "b"], adjacency(DIAMOND))
        assert dist["t"] == 1

    def test_unreachable_absent(self):
        dist = min_distances(["t"], adjacency(DIAMOND))
        assert dist == {"t": 0}

    def test_negative_weight_rejected(self):
        bad = [E("s", "t", -1)]
        with pytest.raises(ReproError):
            min_distances(["s"], adjacency(bad))

    def test_big_weights(self):
        huge = [E("s", "t", 2**100)]
        assert min_distances(["s"], adjacency(huge))["t"] == 2**100


class TestReverseAdjacency:
    def test_reversed_edges(self):
        rev = reverse_adjacency(DIAMOND)
        into_t = rev("t")
        assert {edge.source for edge in into_t} == {"t"}
        assert {edge.target for edge in into_t} == {"a", "b"}

    def test_backward_distances(self):
        rev = reverse_adjacency(DIAMOND)
        dist = min_distances(["t"], rev)
        assert dist["s"] == 2
        assert dist["a"] == 1  # a->b->t


class TestOptimalEdges:
    def test_keeps_only_cheapest(self):
        cost, kept = optimal_edges("s", ["t"], DIAMOND)
        assert cost == 2
        names = {edge.name for edge in kept}
        assert names == {"sa", "ab", "bt"}

    def test_multiple_optimal_paths(self):
        edges = [E("s", "a", 1, "sa"), E("s", "b", 1, "sb"),
                 E("a", "t", 1, "at"), E("b", "t", 1, "bt")]
        cost, kept = optimal_edges("s", ["t"], edges)
        assert cost == 2
        assert len(kept) == 4

    def test_unreachable(self):
        cost, kept = optimal_edges("s", ["ghost"], DIAMOND)
        assert cost is None and kept == []

    def test_source_is_target(self):
        cost, kept = optimal_edges("s", ["s"], DIAMOND)
        assert cost == 0 and kept == []


class TestCountPaths:
    def test_diamond(self):
        dag = [E("s", "a", 1), E("s", "b", 1), E("a", "t", 1), E("b", "t", 1)]
        assert count_paths("s", ["t"], adjacency(dag)) == 2

    def test_multiplicity(self):
        dag = [E("s", "a", 1, "x"), E("a", "t", 1, "y")]

        def mult(edge):
            return 3 if edge.name == "x" else 2

        assert count_paths("s", ["t"], adjacency(dag), mult) == 6

    def test_exponential_layers(self):
        edges = []
        for layer in range(10):
            for branch in "ab":
                edges.append(E(f"v{layer}", f"v{layer+1}", 1, branch))
        assert count_paths("v0", ["v10"], adjacency(edges)) == 2**10

    def test_cycle_detected(self):
        loop = [E("s", "a", 1), E("a", "s", 1), E("a", "t", 1)]
        with pytest.raises(CycleError):
            count_paths("s", ["t"], adjacency(loop))

    def test_source_equals_target(self):
        assert count_paths("s", ["s"], adjacency([])) == 1


class TestEnumeratePaths:
    def test_acyclic_enumeration(self):
        paths = list(enumerate_paths("s", ["t"], adjacency(DIAMOND)))
        assert len(paths) == 3  # sa-at, sa-ab-bt, sb-bt
        assert all(path[-1].target == "t" for path in paths)

    def test_max_cost_prunes(self):
        paths = list(enumerate_paths("s", ["t"], adjacency(DIAMOND), max_cost=2))
        assert len(paths) == 1
        assert [edge.name for edge in paths[0]] == ["sa", "ab", "bt"]

    def test_cyclic_requires_budget(self):
        with pytest.raises(ReproError):
            list(enumerate_paths("s", ["t"], adjacency(DIAMOND), allow_cycles=True))

    def test_cyclic_enumeration_bounded(self):
        loop = [E("s", "s", 1, "pump"), E("s", "t", 0, "go")]
        paths = list(
            enumerate_paths("s", ["t"], adjacency(loop), allow_cycles=True, max_cost=2)
        )
        # pump 0, 1, or 2 times
        assert len(paths) == 3

    def test_max_paths_cap(self):
        paths = list(enumerate_paths("s", ["t"], adjacency(DIAMOND), max_paths=2))
        assert len(paths) == 2


class TestCheapestPath:
    def test_finds_cheapest(self):
        path = cheapest_path("s", ["t"], adjacency(DIAMOND))
        assert sum(edge.weight for edge in path) == 2

    def test_none_when_unreachable(self):
        assert cheapest_path("t", ["s"], adjacency(DIAMOND)) is None

    def test_tie_break_deterministic(self):
        edges = [E("s", "a", 1, "zz"), E("s", "b", 1, "aa"),
                 E("a", "t", 0, "m"), E("b", "t", 0, "m")]
        path = cheapest_path("s", ["t"], adjacency(edges), tie_break=lambda e: e.name)
        assert path[0].name == "aa"


class TestGreedyPath:
    def test_follows_preference(self):
        _, kept = optimal_edges("s", ["t"], DIAMOND)
        path = greedy_path("s", ["t"], adjacency(kept), preference=lambda e: e.name)
        assert [edge.name for edge in path] == ["sa", "ab", "bt"]

    def test_stuck_raises(self):
        with pytest.raises(ReproError):
            greedy_path("s", ["ghost"], adjacency(DIAMOND), preference=repr)
