"""Tests for language inclusion/disjointness, plus the view-DTD property
they were built to verify."""

import random

import pytest

from repro.automata import (
    find_counterexample,
    glushkov,
    language_disjoint,
    language_subset,
    parse_regex,
)
from repro.dtd import view_dtd
from repro.generators import random_annotation, random_dtd


def A(text: str):
    return glushkov(parse_regex(text))


class TestLanguageSubset:
    @pytest.mark.parametrize(
        "small,big",
        [
            ("a,b", "(a|b)*"),
            ("a+", "a*"),
            ("(a,b)+", "(a,b)*"),
            ("a", "a|b"),
            ("ε", "a*"),
        ],
    )
    def test_positive(self, small, big):
        assert language_subset(A(small), A(big))

    @pytest.mark.parametrize(
        "left,right",
        [
            ("a*", "a+"),
            ("a|b", "a"),
            ("(a|b)*", "(a,b)*"),
        ],
    )
    def test_negative_with_counterexample(self, left, right):
        word = find_counterexample(A(left), A(right))
        assert word is not None
        assert A(left).accepts(word)
        assert not A(right).accepts(word)

    def test_counterexample_is_shortest(self):
        word = find_counterexample(A("a*"), A("a,a,a"))
        assert word == ()  # ε distinguishes immediately

    def test_equivalence_via_two_inclusions(self):
        left, right = A("a,a*"), A("a+")
        assert language_subset(left, right)
        assert language_subset(right, left)


class TestLanguageDisjoint:
    def test_disjoint(self):
        assert language_disjoint(A("a,a"), A("b,b"))
        assert language_disjoint(A("a"), A("a,a"))

    def test_overlapping(self):
        assert not language_disjoint(A("a*"), A("a+"))
        assert not language_disjoint(A("a|b"), A("b|c"))

    def test_epsilon_overlap(self):
        assert not language_disjoint(A("a*"), A("b*"))  # both accept ε


class TestViewDTDDerivationProperty:
    """The derived view DTD is *exactly* the homomorphic image:
    both inclusions hold for every symbol of random (DTD, annotation)
    pairs. The image automaton is built here independently via an
    explicit erase-and-check construction on sampled words."""

    @pytest.mark.parametrize("seed", range(12))
    def test_sampled_words_project_into_view_language(self, seed):
        rng = random.Random(seed)
        dtd = random_dtd(rng, 4)
        annotation = random_annotation(rng, dtd, 0.4)
        derived = view_dtd(dtd, annotation)
        for symbol in sorted(dtd.alphabet):
            model = dtd.automaton(symbol)
            view_model = derived.automaton(symbol)
            for word in list(model.enumerate_words(4))[:25]:
                image = tuple(
                    child for child in word if annotation.visible(symbol, child)
                )
                assert view_model.accepts(image), (symbol, word, image)

    @pytest.mark.parametrize("seed", range(12))
    def test_view_words_have_preimages(self, seed):
        """Every accepted view word is the image of some source word —
        verified by a flat inversion-graph feasibility check."""
        from repro.inversion import inversion_graphs
        from repro.xmltree import NodeIds, Tree

        rng = random.Random(1000 + seed)
        dtd = random_dtd(rng, 4)
        annotation = random_annotation(rng, dtd, 0.4)
        derived = view_dtd(dtd, annotation)
        for symbol in sorted(dtd.alphabet):
            view_model = derived.automaton(symbol)
            for word in list(view_model.enumerate_words(3))[:10]:
                # build a flat view fragment symbol(word...) and invert it;
                # children get fresh leaf subtrees only if their own rule
                # allows a leaf — restrict to childless-in-view symbols
                fresh = NodeIds("w")
                kids = [Tree.leaf(child, fresh.fresh()) for child in word]
                fragment = Tree.build(symbol, fresh.fresh(), kids)
                if not derived.validates(fragment):
                    continue  # children may need their own view content
                graphs = inversion_graphs(dtd, annotation, fragment)
                assert graphs.min_inversion_size() >= fragment.size
