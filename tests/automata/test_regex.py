"""Tests for the content-model regex AST and parser."""

import pytest

from repro.automata import (
    EPSILON,
    Concat,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    concat,
    parse_regex,
    union,
)
from repro.errors import RegexSyntaxError


class TestParser:
    def test_single_symbol(self):
        assert parse_regex("a") == Symbol("a")

    def test_multichar_symbol(self):
        assert parse_regex("patient") == Symbol("patient")

    def test_concat_with_comma(self):
        assert parse_regex("a,b") == Concat((Symbol("a"), Symbol("b")))

    def test_concat_with_dot_and_middot(self):
        assert parse_regex("a.b") == parse_regex("a,b")
        assert parse_regex("a·b") == parse_regex("a,b")

    def test_union(self):
        assert parse_regex("a|b") == Union((Symbol("a"), Symbol("b")))

    def test_postfix_operators(self):
        assert parse_regex("a*") == Star(Symbol("a"))
        assert parse_regex("a+") == Plus(Symbol("a"))
        assert parse_regex("a?") == Optional(Symbol("a"))

    def test_stacked_postfix(self):
        assert parse_regex("a*?") == Optional(Star(Symbol("a")))

    def test_precedence_union_lowest(self):
        # a,b|c  parses as  (a,b) | c
        expr = parse_regex("a,b|c")
        assert isinstance(expr, Union)
        assert expr.parts[0] == Concat((Symbol("a"), Symbol("b")))

    def test_parens(self):
        expr = parse_regex("(a,(b|c),d)*")
        assert isinstance(expr, Star)
        inner = expr.child
        assert isinstance(inner, Concat)
        assert inner.parts[1] == Union((Symbol("b"), Symbol("c")))

    @pytest.mark.parametrize("token", ["ε", "eps", "epsilon", "EMPTY", "#EMPTY"])
    def test_epsilon_tokens(self, token: str):
        assert parse_regex(token).nullable()

    def test_epsilon_in_union(self):
        # the paper's D3 uses (c + ε)
        expr = parse_regex("(c|ε)")
        assert expr.nullable()
        assert expr.symbols() == {"c"}

    def test_whitespace(self):
        assert parse_regex(" ( a , b ) * ") == parse_regex("(a,b)*")

    @pytest.mark.parametrize("bad", ["(", "a,", "a|", "|a", "a)", "*", "(a", "a b"])
    def test_syntax_errors(self, bad: str):
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)

    def test_empty_string_is_epsilon(self):
        assert parse_regex("") == EPSILON
        assert parse_regex("   ") == EPSILON


class TestNullable:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a", False),
            ("a*", True),
            ("a?", True),
            ("a+", False),
            ("a,b", False),
            ("a*,b*", True),
            ("a|b*", True),
            ("(a,b)+", False),
            ("(a?,b?)+", True),
            ("ε", True),
        ],
    )
    def test_nullable(self, text: str, expected: bool):
        assert parse_regex(text).nullable() is expected


class TestSymbols:
    def test_symbols_collected(self):
        assert parse_regex("(a,(b|c),d)*").symbols() == {"a", "b", "c", "d"}

    def test_epsilon_has_no_symbols(self):
        assert EPSILON.symbols() == frozenset()


class TestRendering:
    def test_dtd_rendering_round_trips(self):
        for text in ["(a,(b|c),d)*", "a|b|c", "(a,b)+", "a?", "((a|b),c)*"]:
            expr = parse_regex(text)
            assert parse_regex(expr.to_dtd()) == expr

    def test_paper_rendering(self):
        assert parse_regex("(a,(b|c),d)*").to_paper() == "(a·(b+c)·d)*"
        assert parse_regex("((a|b),c)*").to_paper() == "((a+b)·c)*"

    def test_epsilon_renders(self):
        assert parse_regex("a|ε").to_dtd() == "a|ε"


class TestSmartConstructors:
    def test_concat_flattens(self):
        expr = concat(Symbol("a"), concat(Symbol("b"), Symbol("c")))
        assert expr == Concat((Symbol("a"), Symbol("b"), Symbol("c")))

    def test_concat_drops_epsilon(self):
        assert concat(EPSILON, Symbol("a"), EPSILON) == Symbol("a")
        assert concat(EPSILON) == EPSILON
        assert concat() == EPSILON

    def test_union_deduplicates(self):
        assert union(Symbol("a"), Symbol("a")) == Symbol("a")

    def test_union_flattens(self):
        expr = union(Symbol("a"), union(Symbol("b"), Symbol("c")))
        assert expr == Union((Symbol("a"), Symbol("b"), Symbol("c")))

    def test_union_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            union()
