"""Tests for the NFA model and the Glushkov construction."""

import pytest

from repro.automata import NFA, glushkov, is_one_unambiguous, parse_regex
from repro.errors import AutomatonError


def A(text: str) -> NFA:
    return glushkov(parse_regex(text))


class TestNFABasics:
    def test_paper_size_measure(self):
        nfa = NFA(["p", "q"], ["a"], "p", [("p", "a", "q")], ["q"])
        assert nfa.size == 2 + 1 + 1

    def test_duplicate_transitions_collapse(self):
        nfa = NFA(["p"], ["a"], "p", [("p", "a", "p"), ("p", "a", "p")], ["p"])
        assert nfa.n_transitions == 1

    def test_validation(self):
        with pytest.raises(AutomatonError):
            NFA(["p"], ["a"], "missing", [], [])
        with pytest.raises(AutomatonError):
            NFA(["p"], ["a"], "p", [("p", "a", "ghost")], [])
        with pytest.raises(AutomatonError):
            NFA(["p"], ["a"], "p", [("p", "z", "p")], [])
        with pytest.raises(AutomatonError):
            NFA(["p"], ["a"], "p", [], ["ghost"])

    def test_empty_word_automaton(self):
        nfa = NFA.empty_word_automaton(["a"])
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_from_triples_infers(self):
        nfa = NFA.from_triples("s", [("s", "a", "t")], ["t"])
        assert nfa.states == {"s", "t"}
        assert nfa.alphabet == {"a"}


class TestAcceptance:
    @pytest.mark.parametrize(
        "regex,word,expected",
        [
            ("(a,(b|c),d)*", [], True),
            ("(a,(b|c),d)*", ["a", "b", "d"], True),
            ("(a,(b|c),d)*", ["a", "b", "d", "a", "c", "d"], True),
            ("(a,(b|c),d)*", ["a", "b"], False),
            ("(a,(b|c),d)*", ["a", "d"], False),
            ("((a|b),c)*", ["a", "c"], True),
            ("((a|b),c)*", ["b", "c"], True),
            ("((a|b),c)*", ["a", "c", "b", "c"], True),
            ("((a|b),c)*", ["c"], False),
            ("a+", [], False),
            ("a+", ["a", "a", "a"], True),
            ("a?", [], True),
            ("a?", ["a", "a"], False),
            ("b,(c|ε),(a,c)*", ["b", "a", "c"], True),
            ("b,(c|ε),(a,c)*", ["b", "c", "a", "c"], True),
            ("b,(c|ε),(a,c)*", ["b", "a", "c", "a", "c"], True),
            ("b,(c|ε),(a,c)*", ["a", "c"], False),
        ],
    )
    def test_accepts(self, regex, word, expected):
        assert A(regex).accepts(word) is expected

    def test_accepts_epsilon(self):
        assert A("a*").accepts_epsilon()
        assert not A("a").accepts_epsilon()


class TestGlushkovStructure:
    def test_paper_figure2_r_automaton(self):
        """D0's rule r → (a·(b+c)·d)* yields the 3-state automaton of Fig. 2."""
        nfa = A("(a,(b|c),d)*")
        # positions: a=1, b=2, c=3, d=4 but b,c behave identically;
        # the *language* matches the figure's 3-state automaton.
        fig2 = NFA.from_triples(
            "q0",
            [
                ("q0", "a", "q1"),
                ("q1", "b", "q2"),
                ("q1", "c", "q2"),
                ("q2", "d", "q0"),
            ],
            ["q0"],
        )
        assert nfa.equivalent(fig2)

    def test_paper_figure2_d_automaton(self):
        nfa = A("((a|b),c)*")
        fig2 = NFA.from_triples(
            "p0",
            [("p0", "a", "p1"), ("p0", "b", "p1"), ("p1", "c", "p0")],
            ["p0"],
        )
        assert nfa.equivalent(fig2)

    def test_state_count_is_positions_plus_one(self):
        assert len(A("(a,(b|c),d)*").states) == 5
        assert len(A("a").states) == 2

    def test_no_transitions_into_initial(self):
        nfa = A("(a,b)*")
        assert all(target != 0 for _, _, target in nfa.transitions())

    def test_alphabet_extension(self):
        nfa = glushkov(parse_regex("a"), alphabet=frozenset({"a", "z"}))
        assert nfa.alphabet == {"a", "z"}


class TestDeterminism:
    @pytest.mark.parametrize(
        "regex,expected",
        [
            ("(a,(b|c),d)*", True),
            ("((a|b),c)*", True),
            ("b,(c|ε),(a,c)*", True),
            ("(a,b*)*", True),
            ("(a|b)*,a", False),  # classic one-ambiguous expression
            ("(a,b)|(a,c)", False),
        ],
    )
    def test_one_unambiguous(self, regex, expected):
        assert is_one_unambiguous(parse_regex(regex)) is expected
        assert A(regex).is_deterministic() is expected


class TestLanguageQueries:
    def test_language_nonempty(self):
        assert A("a*").language_nonempty()
        assert A("a,b").language_nonempty()

    def test_reachable_and_coreachable(self):
        nfa = NFA.from_triples(
            "s", [("s", "a", "t"), ("t", "b", "u"), ("x", "a", "t")], ["u"],
            extra_states=["dead"],
        )
        assert "x" not in nfa.reachable_states()
        assert "dead" not in nfa.coreachable_states()
        trimmed = nfa.trim()
        assert trimmed.states == {"s", "t", "u"}

    def test_enumerate_words(self):
        words = list(A("(a,b)*").enumerate_words(4))
        assert words == [(), ("a", "b"), ("a", "b", "a", "b")]

    def test_enumerate_words_sorted_shortest_first(self):
        words = list(A("a|b|(a,a)").enumerate_words(2))
        assert words == [("a",), ("b",), ("a", "a")]


class TestEquivalence:
    def test_same_language_different_regex(self):
        assert A("a,a*").equivalent(A("a+"))
        assert A("(a|ε)").equivalent(A("a?"))

    def test_different_languages(self):
        assert not A("a*").equivalent(A("a+"))

    def test_renamed_preserves_language(self):
        nfa = A("(a,b)*")
        renamed = nfa.renamed(lambda q: f"s{q}")
        assert nfa.equivalent(renamed)

    def test_to_dot_output(self):
        dot = A("a").to_dot()
        assert "digraph" in dot and "doublecircle" in dot
