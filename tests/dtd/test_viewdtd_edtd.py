"""Tests for view-DTD derivation and EDTD typing."""

import pytest

from repro.automata import glushkov, parse_regex
from repro.dtd import DTD, EDTD, erase_hidden, view_dtd
from repro.errors import EDTDError
from repro.views import Annotation
from repro.xmltree import parse_term


@pytest.fixture
def d0() -> DTD:
    return DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})


@pytest.fixture
def a0() -> Annotation:
    return Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))


class TestEraseHidden:
    def test_middle_symbol_erased(self):
        model = glushkov(parse_regex("(a,(b|c),d)*"))
        erased = erase_hidden(model, {"a", "d"})
        assert erased.equivalent(glushkov(parse_regex("(a,d)*")))

    def test_all_hidden_gives_epsilon(self):
        model = glushkov(parse_regex("(a,b)*"))
        erased = erase_hidden(model, set())
        assert erased.accepts([])
        assert not erased.language_nonempty() or erased.accepts([])
        assert list(erased.enumerate_words(3)) == [()]

    def test_nothing_hidden_is_identity(self):
        model = glushkov(parse_regex("(a,(b|c),d)*"))
        erased = erase_hidden(model, {"a", "b", "c", "d"})
        assert erased.equivalent(model)


class TestViewDTD:
    def test_paper_example(self, d0: DTD, a0: Annotation):
        """Section 2: 'the view DTD for D0 and A0 is r → (a·d)*, d → c*'."""
        derived = view_dtd(d0, a0)
        assert derived.automaton("r").equivalent(glushkov(parse_regex("(a,d)*")))
        assert derived.automaton("d").equivalent(glushkov(parse_regex("c*")))

    def test_view_of_valid_tree_is_view_valid(self, d0: DTD, a0: Annotation):
        t0 = parse_term(
            "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
        )
        derived = view_dtd(d0, a0)
        assert derived.validates(a0.view(t0))

    def test_rule_regex_display(self, d0: DTD, a0: Annotation):
        derived = view_dtd(d0, a0)
        # round-trip the derived display regex back to the same language
        regex = derived.rule_regex("r")
        assert glushkov(regex).equivalent(glushkov(parse_regex("(a,d)*")))

    def test_d3_example(self):
        """Section 6.2: D3 = r → b·(c+ε)·(a·c)* with b, a hidden gives r → c*."""
        d3 = DTD({"r": "b,(c|ε),(a,c)*"})
        a3 = Annotation.hiding(("r", "b"), ("r", "a"))
        derived = view_dtd(d3, a3)
        assert derived.automaton("r").equivalent(glushkov(parse_regex("c*")))

    def test_identity_annotation_keeps_language(self, d0: DTD):
        derived = view_dtd(d0, Annotation.identity())
        for symbol in d0.alphabet:
            assert derived.automaton(symbol).equivalent(d0.automaton(symbol))


class TestEDTD:
    @pytest.fixture
    def edtd(self) -> EDTD:
        # two 'a' types distinguished by *ancestor* context (single-type
        # EDTDs cannot distinguish sibling types by position)
        return EDTD(
            {
                "Root": ("r", "TopA*"),
                "TopA": ("a", "b_sec*"),
                "b_sec": ("b", "InnerA*"),
                "InnerA": ("a", ""),
            },
            ["Root"],
        )

    def test_typing_assigns_context_types(self, edtd: EDTD):
        tree = parse_term("r#x(a#h(b#l(a#i1, a#i2)), a#t)")
        types = edtd.typing(tree)
        assert types["x"] == "Root"
        assert types["h"] == types["t"] == "TopA"
        assert types["l"] == "b_sec"
        assert types["i1"] == types["i2"] == "InnerA"

    def test_conforms(self, edtd: EDTD):
        assert edtd.conforms(parse_term("r(a)"))
        assert not edtd.conforms(parse_term("r(b)"))
        # InnerA 'a' (under b) cannot have children
        assert not edtd.conforms(parse_term("r(a(b(a(b))))"))

    def test_single_type_violation_rejected(self):
        with pytest.raises(EDTDError):
            EDTD(
                {
                    "Root": ("r", "A1|A2"),
                    "A1": ("a", ""),
                    "A2": ("a", ""),
                },
                ["Root"],
            )

    def test_root_type_label_mismatch(self):
        edtd = EDTD({"Root": ("r", "")}, ["Root"])
        with pytest.raises(EDTDError):
            edtd.typing(parse_term("a"))

    def test_unknown_root_type(self):
        with pytest.raises(EDTDError):
            EDTD({"Root": ("r", "")}, ["Ghost"])

    def test_duplicate_root_labels_rejected(self):
        with pytest.raises(EDTDError):
            EDTD({"R1": ("r", ""), "R2": ("r", "")}, ["R1", "R2"])

    def test_unknown_type_in_model(self):
        with pytest.raises(EDTDError):
            EDTD({"Root": ("r", "Ghost")}, ["Root"])

    def test_from_dtd_trivial_typing(self):
        dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
        edtd = EDTD.from_dtd(dtd, "r")
        tree = parse_term("r(a, b, d(a, c))")
        types = edtd.typing(tree)
        assert set(types.values()) <= dtd.alphabet
        assert types[tree.root] == "r"

    def test_empty_tree_rejected(self, edtd: EDTD):
        from repro.xmltree import Tree

        with pytest.raises(EDTDError):
            edtd.typing(Tree.empty())
