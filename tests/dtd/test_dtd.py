"""Tests for the DTD model: validation, satisfiability, sizes."""

import pytest

from repro.dtd import DTD, parse_dtd, serialize_dtd
from repro.errors import DTDError, UnknownLabelError, UnsatisfiableDTDError
from repro.xmltree import parse_term


@pytest.fixture
def d0() -> DTD:
    """The paper's Figure 2 DTD."""
    return DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})


class TestConstruction:
    def test_alphabet_includes_rule_symbols(self, d0: DTD):
        assert d0.alphabet == {"r", "a", "b", "c", "d"}

    def test_extra_alphabet(self):
        dtd = DTD({"r": "a*"}, alphabet=["z"])
        assert "z" in dtd.alphabet
        assert dtd.allows("z", [])

    def test_regex_object_rule(self):
        from repro.automata import parse_regex

        dtd = DTD({"r": parse_regex("a*")})
        assert dtd.allows("r", ["a", "a"])

    def test_nfa_rule(self):
        from repro.automata import NFA

        model = NFA.from_triples(0, [(0, "a", 1)], [1])
        dtd = DTD({"r": model})
        assert dtd.allows("r", ["a"])
        assert not dtd.allows("r", [])

    def test_bad_rule_type(self):
        with pytest.raises(DTDError):
            DTD({"r": 42})  # type: ignore[dict-item]

    def test_implicit_epsilon_rule(self, d0: DTD):
        assert d0.allows("a", [])
        assert not d0.allows("a", ["a"])
        assert not d0.has_explicit_rule("a")
        assert d0.has_explicit_rule("r")

    def test_unknown_label(self, d0: DTD):
        with pytest.raises(UnknownLabelError):
            d0.automaton("zzz")
        with pytest.raises(UnknownLabelError):
            d0.with_root("zzz")

    def test_size_positive(self, d0: DTD):
        assert d0.size > 0


class TestSatisfiability:
    def test_satisfiable_dtd_accepted(self, d0: DTD):
        assert d0.satisfiable_symbols() == d0.alphabet

    def test_unsatisfiable_rejected(self):
        # r requires an 'a' child, and 'a' requires an 'r' child: no finite tree
        with pytest.raises(UnsatisfiableDTDError) as exc:
            DTD({"r": "a", "a": "r"})
        assert "a" in exc.value.symbols and "r" in exc.value.symbols

    def test_partially_unsatisfiable(self):
        with pytest.raises(UnsatisfiableDTDError) as exc:
            DTD({"r": "a*", "b": "b"})
        assert exc.value.symbols == ("b",)

    def test_recursive_but_satisfiable(self):
        # recursion guarded by * is fine
        dtd = DTD({"r": "r*"})
        assert dtd.satisfiable_symbols() == {"r"}

    def test_check_can_be_deferred(self):
        dtd = DTD({"r": "a", "a": "r"}, check=False)
        with pytest.raises(UnsatisfiableDTDError):
            dtd.assert_satisfiable()


class TestValidation:
    def test_paper_t0_satisfies_d0(self, d0: DTD):
        t0 = parse_term(
            "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
        )
        assert d0.validates(t0)
        d0.assert_valid(t0)

    def test_empty_tree_not_in_language(self, d0: DTD):
        from repro.xmltree import Tree

        assert not d0.validates(Tree.empty())
        with pytest.raises(DTDError):
            d0.assert_valid(Tree.empty())

    def test_violation_reported(self, d0: DTD):
        bad = parse_term("r(a, d)")  # (b|c) missing between a and d
        assert not d0.validates(bad)
        violations = list(d0.violations(bad))
        assert len(violations) == 1
        assert violations[0].label == "r"
        assert violations[0].word == ("a", "d")

    def test_violation_deep(self, d0: DTD):
        bad = parse_term("r(a, b, d(a, c, a))")
        violations = list(d0.violations(bad))
        assert [v.label for v in violations] == ["d"]

    def test_unknown_label_in_tree_is_violation(self, d0: DTD):
        bad = parse_term("r(zzz)")
        assert not d0.validates(bad)

    def test_any_root_label_allowed(self, d0: DTD):
        # the paper drops the root-label requirement to allow fragments
        fragment = parse_term("d(a, c)")
        assert d0.validates(fragment)

    def test_rooted_dtd_restores_requirement(self, d0: DTD):
        rooted = d0.with_root("r")
        assert not rooted.validates(parse_term("d(a, c)"))
        assert rooted.validates(parse_term("r(a, b, d)"))


class TestDescribe:
    def test_describe_lists_rules(self, d0: DTD):
        text = d0.describe()
        assert "r -> (a,(b|c),d)*" in text
        assert "d -> ((a|b),c)*" in text

    def test_repr(self, d0: DTD):
        assert "rules=2" in repr(d0)


class TestDTDIO:
    def test_parse_round_trip(self, d0: DTD):
        text = serialize_dtd(d0)
        back = parse_dtd(text)
        assert back.alphabet == d0.alphabet
        for symbol in d0.alphabet:
            assert back.automaton(symbol).equivalent(d0.automaton(symbol))

    def test_parse_realistic_document(self):
        dtd = parse_dtd(
            """
            <!-- hospital records -->
            <!ELEMENT hospital (patient*)>
            <!ELEMENT patient (name, ward, (treatment | diagnosis)*)>
            <!ELEMENT name (#PCDATA)>
            <!ELEMENT ward EMPTY>
            <!ATTLIST patient id CDATA #REQUIRED>
            """
        )
        assert dtd.allows("hospital", ["patient", "patient"])
        assert dtd.allows("patient", ["name", "ward", "treatment", "diagnosis"])
        assert dtd.allows("name", [])

    def test_mixed_content_keeps_elements(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em)*>")
        assert dtd.allows("p", ["em", "em"])
        assert dtd.allows("p", [])

    def test_any_rejected(self):
        from repro.errors import DTDSyntaxError

        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT r ANY>")

    def test_duplicate_element_rejected(self):
        from repro.errors import DTDSyntaxError

        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT r (a)>\n<!ELEMENT r (b)>")

    def test_garbage_rejected(self):
        from repro.errors import DTDSyntaxError

        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT r (a)> and some garbage")
