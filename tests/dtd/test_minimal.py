"""Tests for minimal trees: sizes, shapes, counting, exponential family."""

import pytest

from repro.dtd import (
    DTD,
    count_minimal_shapes,
    minimal_shape,
    minimal_size,
    minimal_sizes,
    minimal_tree,
)
from repro.errors import UnknownLabelError
from repro.xmltree import NodeIds


def exponential_dtd(n: int) -> DTD:
    """The Section 5 family: a → aₙ·aₙ, aᵢ → aᵢ₋₁·aᵢ₋₁, a₀ → ε."""
    rules = {"a": f"a{n},a{n}"}
    for i in range(n, 0, -1):
        rules[f"a{i}"] = f"a{i-1},a{i-1}"
    return DTD(rules)


class TestMinimalSizes:
    def test_childless_symbol(self):
        sizes = minimal_sizes(DTD({"r": "a*"}))
        assert sizes["a"] == 1
        assert sizes["r"] == 1  # a* is nullable

    def test_required_children(self):
        sizes = minimal_sizes(DTD({"r": "a,(b|c),d"}))
        assert sizes["r"] == 4

    def test_nested_requirements(self):
        sizes = minimal_sizes(DTD({"r": "x,x", "x": "y", "y": "z?"}))
        # y is nullable (z?), so |y|=1, |x|=2, |r|=1+2·2=5
        assert sizes == {"r": 5, "x": 2, "y": 1, "z": 1}

    def test_cheaper_branch_chosen(self):
        sizes = minimal_sizes(DTD({"r": "x|y", "x": "a,a,a", "y": "a"}))
        assert sizes["r"] == 1 + sizes["y"]
        assert sizes["y"] == 2

    def test_recursive_rule(self):
        sizes = minimal_sizes(DTD({"r": "r*"}))
        assert sizes["r"] == 1

    def test_paper_exponential_family(self):
        """Section 5: minimal trees exponential in the DTD size."""
        for n in [1, 3, 6, 20, 64]:
            dtd = exponential_dtd(n)
            # complete binary tree of height n+1: 2^(n+2) - 1 nodes
            assert minimal_size(dtd, "a") == 2 ** (n + 2) - 1

    def test_unknown_symbol(self):
        with pytest.raises(UnknownLabelError):
            minimal_size(DTD({"r": "a*"}), "zzz")


class TestMinimalShapeAndTree:
    def test_shape_is_canonical(self):
        dtd = DTD({"r": "a,(b|c),d", "d": "((a|b),c)*"})
        shape = minimal_shape(dtd, "r")
        # lexicographically smallest cheapest word: a b d, with empty d
        assert shape == ("r", (("a", ()), ("b", ()), ("d", ())))

    def test_tree_matches_shape_and_size(self):
        dtd = DTD({"r": "x,x", "x": "y", "y": ""})
        tree = minimal_tree(dtd, "r")
        assert tree.size == minimal_size(dtd, "r") == 5
        assert dtd.validates(tree)
        assert tree.label(tree.root) == "r"

    def test_fresh_ids_disjoint(self):
        dtd = DTD({"r": "a,a"})
        gen = NodeIds("w")
        first = minimal_tree(dtd, "r", gen)
        second = minimal_tree(dtd, "r", gen)
        assert first.node_set.isdisjoint(second.node_set)
        assert first.isomorphic(second)

    def test_small_exponential_instance_materialises(self):
        dtd = exponential_dtd(2)
        tree = minimal_tree(dtd, "a")
        assert tree.size == 15
        assert dtd.validates(tree)

    @pytest.mark.parametrize(
        "rules,symbol",
        [
            ({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"}, "r"),
            ({"r": "a+,b?"}, "r"),
            ({"r": "x|(y,z)", "x": "w,w"}, "r"),
        ],
    )
    def test_minimal_tree_always_valid_and_minimal(self, rules, symbol):
        dtd = DTD(rules)
        tree = minimal_tree(dtd, symbol)
        assert dtd.validates(tree)
        assert tree.size == minimal_size(dtd, symbol)


class TestCountMinimalShapes:
    def test_unique_minimal(self):
        assert count_minimal_shapes(DTD({"r": "a,b"}), "r") == 1

    def test_two_way_choice(self):
        assert count_minimal_shapes(DTD({"r": "a,(b|c),d"}), "r") == 2

    def test_choices_multiply(self):
        assert count_minimal_shapes(DTD({"r": "(a|b),(c|d)"}), "r") == 4

    def test_nested_counts(self):
        dtd = DTD({"r": "x,x", "x": "a|b"})
        # each x has 2 minimal shapes; r = 2 * 2
        assert count_minimal_shapes(dtd, "r") == 4

    def test_longer_but_equal_cost_words(self):
        # both branches cost 2: one word of length 2 and one of length 2
        dtd = DTD({"r": "(a,a)|(b,b)"})
        assert count_minimal_shapes(dtd, "r") == 2

    def test_cheaper_word_excludes_expensive(self):
        dtd = DTD({"r": "a|(b,b)"})
        assert count_minimal_shapes(dtd, "r") == 1

    def test_star_contributes_single_empty_word(self):
        assert count_minimal_shapes(DTD({"r": "(a|b)*"}), "r") == 1
