"""The replication-live chaos smoke: a full follow topology under kill -9.

Topology (all localhost TCP, all real processes):

    repro-xml serve --root pri --standby-root sby1 --standby-root sby2
    repro-xml replica follow --standby sby1 --listen 127.0.0.1:0
    repro-xml replica follow --standby sby2 --listen 127.0.0.1:0
    repro-xml replica ship --follow --connect <f1> --connect <f2> --metrics-port 0

Script: drive 10 propagations through the wire client and assert
``repro_shipper_lag`` converges to 0 on the daemon's ``/metrics``;
``kill -9`` the daemon, drive 10 more (lag builds with nobody
shipping), restart the daemon, assert convergence again; assert a
bounded ``view`` read is served by a replica; SIGTERM everything and
byte-compare both standby WALs, documents, and views against the
primary.

Run from the repo root with ``PYTHONPATH=src``:

    python .github/scripts/replication_live_smoke.py --workdir /tmp/smoke
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

from repro.engine import ViewEngine
from repro.generators.updates import random_view_update
from repro.generators.workloads import running_example
from repro.server.client import ServeClient
from repro.store import DocumentStore
from repro.store.wal import scan_wal
from repro.xmltree import tree_to_xml

UPDATES = 20
DOC = "doc"

# The smoke chdirs into its workdir, so the subprocesses need the repo's
# src on an *absolute* PYTHONPATH regardless of how this script found it.
_SRC = str(Path(__file__).resolve().parents[2] / "src")


def launch(workdir: Path, name: str, argv: "list[str]") -> subprocess.Popen:
    """Start a CLI process with line-buffered stdout teed to a log file
    (the CI job uploads the logs on failure)."""
    log = open(workdir / f"{name}.log", "w", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=log,
        stderr=subprocess.STDOUT,
        env={
            **os.environ,
            "PYTHONUNBUFFERED": "1",
            "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
        },
    )


def wait_line(workdir: Path, name: str, pattern: str, timeout: float = 30.0) -> str:
    """Block until a launched process prints a line matching *pattern*;
    returns the first match group (or whole match)."""
    deadline = time.monotonic() + timeout
    log = workdir / f"{name}.log"
    while time.monotonic() < deadline:
        if log.is_file():
            match = re.search(pattern, log.read_text(encoding="utf-8"))
            if match:
                return match.group(1) if match.groups() else match.group(0)
        time.sleep(0.05)
    raise SystemExit(
        f"FAIL: {name} never printed {pattern!r}; log:\n"
        + (log.read_text(encoding="utf-8") if log.is_file() else "<missing>")
    )


def metrics_text(port: int) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=5
    ) as response:
        return response.read().decode("utf-8")


def wait_converged(metrics_port: int, labels: "list[str]", timeout: float = 30.0):
    """Poll the daemon's /metrics until every standby label reports
    repro_shipper_lag 0 and repro_follower_connected 1."""
    deadline = time.monotonic() + timeout
    last = ""
    while time.monotonic() < deadline:
        try:
            last = metrics_text(metrics_port)
        except OSError:
            time.sleep(0.1)
            continue
        converged = all(
            re.search(
                rf'repro_shipper_lag{{doc="{DOC}",standby="{re.escape(label)}"}} 0\b',
                last,
            )
            and re.search(
                rf'repro_follower_connected{{standby="{re.escape(label)}"}} 1\b',
                last,
            )
            for label in labels
        )
        if converged:
            return last
        time.sleep(0.1)
    raise SystemExit(f"FAIL: shipper lag never converged; last /metrics:\n{last}")


def wait_applied(root: Path, seq: int, timeout: float = 30.0) -> None:
    """Poll a standby's WAL until it has durably applied up to *seq*."""
    wal = root / "docs" / DOC / "wal.log"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if scan_wal(wal).last_seq >= seq:
                return
        except Exception:
            pass
        time.sleep(0.05)
    raise SystemExit(f"FAIL: {root} never applied up to seq {seq}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workdir", required=True)
    args = parser.parse_args()
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    os.chdir(workdir)

    # -- seed the primary and precompute a deterministic update chain --
    workload = running_example(6)
    store = DocumentStore.init("pri", fsync="always")
    store.put(DOC, workload.source, workload.dtd, workload.annotation)
    store.close()
    import random

    rng = random.Random(1910)
    engine = ViewEngine(workload.dtd, workload.annotation)
    shadow = engine.session(workload.source)
    updates = []
    for _ in range(UPDATES):
        update = random_view_update(
            rng, workload.dtd, workload.annotation, shadow.source, n_ops=2
        )
        updates.append(update.to_term())
        shadow.propagate(update)

    procs: "dict[str, subprocess.Popen]" = {}
    try:
        # -- standby appliers (they create sby1/sby2 on startup) --------
        for name in ("sby1", "sby2"):
            procs[name] = launch(
                workdir,
                name,
                [
                    "replica",
                    "follow",
                    "--standby",
                    name,
                    "--primary",
                    "pri",
                    "--listen",
                    "127.0.0.1:0",
                ],
            )
        feeds = {
            name: wait_line(workdir, name, rf"feeding .* on (127\.0\.0\.1:\d+)")
            for name in ("sby1", "sby2")
        }
        print(f"appliers up: {feeds}")

        # -- the serving front-end over primary + both standbys ---------
        procs["serve"] = launch(
            workdir,
            "serve",
            [
                "serve",
                "--root",
                "pri",
                "--standby-root",
                "sby1",
                "--standby-root",
                "sby2",
                "--fsync",
                "always",
            ],
        )
        serve_port = int(wait_line(workdir, "serve", r"serving on 127\.0\.0\.1:(\d+)"))

        # -- the follow daemon -------------------------------------------
        def start_daemon() -> int:
            procs["daemon"] = launch(
                workdir,
                "daemon",
                [
                    "replica",
                    "ship",
                    "--follow",
                    "--primary",
                    "pri",
                    "--connect",
                    feeds["sby1"],
                    "--connect",
                    feeds["sby2"],
                    "--poll-interval",
                    "0.1",
                    "--metrics-port",
                    "0",
                ],
            )
            return int(
                wait_line(workdir, "daemon", r"metrics on 127\.0\.0\.1:(\d+)")
            )

        metrics_port = start_daemon()
        labels = [feeds["sby1"], feeds["sby2"]]

        # -- phase 1: live stream, assert convergence --------------------
        client = ServeClient("127.0.0.1", serve_port)
        for term in updates[:10]:
            client.propagate(DOC, term)
        wait_converged(metrics_port, labels)
        print("phase 1: 10 updates shipped, lag converged to 0")

        # -- phase 2: kill -9 mid-stream, keep writing -------------------
        procs["daemon"].kill()  # SIGKILL: no drain, no goodbye
        procs["daemon"].wait(timeout=10)
        for term in updates[10:]:
            client.propagate(DOC, term)
        print("phase 2: daemon killed, 10 more updates written with no shipper")

        # -- phase 3: restart, assert it converges again -----------------
        (workdir / "daemon.log").rename(workdir / "daemon-killed.log")
        metrics_port = start_daemon()
        final = wait_converged(metrics_port, labels)
        assert "repro_follower_connected" in final
        wait_applied(workdir / "sby1", UPDATES)
        wait_applied(workdir / "sby2", UPDATES)
        print("phase 3: restarted daemon re-handshook and caught both standbys up")

        # -- bounded read routes to a replica ----------------------------
        answer = client.request("view", doc=DOC, max_lag=0)
        assert answer["served_by"] == "replica", answer.get("served_by")
        print(f"bounded view served by replica (standby #{answer['standby']})")
    finally:
        for name, proc in procs.items():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for name, proc in procs.items():
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit(f"FAIL: {name} did not drain on SIGTERM")

    # -- the differential: byte-identical WALs, documents, views --------
    primary_wal = (workdir / "pri/docs" / DOC / "wal.log").read_bytes()
    for name in ("sby1", "sby2"):
        standby_wal = (workdir / name / "docs" / DOC / "wal.log").read_bytes()
        assert standby_wal == primary_wal, f"{name} WAL diverged from primary"

    def recover_pair(root: str):
        opened = DocumentStore(workdir / root)
        recovered = opened.recover(DOC)
        _, annotation = opened.schema(DOC)
        pair = (
            tree_to_xml(recovered.tree),
            tree_to_xml(annotation.view(recovered.tree)),
        )
        opened.close()
        return pair

    primary_state = recover_pair("pri")
    assert primary_state == recover_pair("sby1"), "sby1 document/view diverged"
    assert primary_state == recover_pair("sby2"), "sby2 document/view diverged"
    assert scan_wal(workdir / "pri/docs" / DOC / "wal.log").last_seq == UPDATES
    print(
        "replication-live smoke OK: kill -9 + restart left both standbys "
        "byte-identical to the primary"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
