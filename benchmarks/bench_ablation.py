"""E8: ablations over the Section 5 design choices.

* preference order of Φ (Nop-first vs Del-first vs Ins-first): all cost
  optimal, but they keep different amounts of hidden content;
* insertlets vs on-the-fly minimal trees: identical results, insertlets
  pre-validate the fragments once;
* typing-preserving selection: success (no-fallback) rate and the cost
  premium it pays on the full graphs.
"""

import pytest

from repro.core import (
    AutomatonStateTyping,
    DEL_OVER_NOP_OVER_INS,
    INS_OVER_NOP_OVER_DEL,
    InsertletPackage,
    NOP_OVER_DEL_OVER_INS,
    PreferenceChooser,
    TypePreservingChooser,
    preserves_typing,
    propagate,
    verify_propagation,
)
from repro.generators.workloads import hospital, running_example

ORDERS = {
    "nop_first": NOP_OVER_DEL_OVER_INS,
    "del_first": DEL_OVER_NOP_OVER_INS,
    "ins_first": INS_OVER_NOP_OVER_DEL,
}


@pytest.mark.parametrize("order", sorted(ORDERS), ids=sorted(ORDERS))
class TestChooserAblation:
    def test_preference_order(self, benchmark, order):
        workload = running_example(8)
        chooser = PreferenceChooser(ORDERS[order])
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
            chooser=chooser,
        )
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )
        kept_hidden = sum(
            1
            for node in script.nodes()
            if script.op(node).value == "Nop"
            and node not in workload.view.node_set
        )
        benchmark.extra_info["cost"] = script.cost
        benchmark.extra_info["kept_hidden_nodes"] = kept_hidden


class TestInsertletAblation:
    def test_minimal_factory(self, benchmark):
        workload = catalog_workload()
        script = benchmark(
            propagate,
            workload.dtd, workload.annotation, workload.source, workload.update,
        )
        benchmark.extra_info["cost"] = script.cost

    def test_insertlet_package(self, benchmark):
        workload = catalog_workload()
        package = InsertletPackage.from_terms(workload.dtd, {"margin": "margin"})
        script = benchmark(
            propagate,
            workload.dtd, workload.annotation, workload.source, workload.update,
            factory=package,
        )
        benchmark.extra_info["cost"] = script.cost


def catalog_workload():
    from repro.generators.workloads import catalog

    return catalog(20)


class TestTypingAblation:
    def test_type_preserving_chooser(self, benchmark):
        workload = hospital(20)
        chooser = TypePreservingChooser(workload.dtd, workload.source)
        script = benchmark(
            propagate,
            workload.dtd, workload.annotation, workload.source, workload.update,
            chooser=chooser,
        )
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )
        typing = AutomatonStateTyping(workload.dtd)
        benchmark.extra_info["preserved_graphs"] = chooser.preserved_graphs
        benchmark.extra_info["fallback_graphs"] = chooser.fallback_graphs
        benchmark.extra_info["typing_preserved"] = preserves_typing(typing, script)
