"""F6: Figure 6 — the inversion graph of d#n11(c,c) and its inverse."""

from repro import paperdata
from repro.inversion import inversion_graphs, invert, verify_inverse


def setup_objects():
    return (
        paperdata.d0(fig2_automata=True),
        paperdata.a0(),
        paperdata.fig6_view_fragment(),
    )


class TestFig6InversionGraph:
    def test_graph_construction(self, benchmark):
        dtd, annotation, fragment = setup_objects()
        graphs = benchmark(inversion_graphs, dtd, annotation, fragment)
        graph = graphs["n11"]
        assert graph.n_vertices == 6          # {c0,m1,m2} × {p0,p1}
        assert graph.n_edges == 8             # 6 Ins + 2 Rec, as drawn
        assert graphs.min_inversion_size() == 5

    def test_inverse_construction(self, benchmark):
        dtd, annotation, fragment = setup_objects()
        inverse = benchmark(invert, dtd, annotation, fragment)
        assert verify_inverse(dtd, annotation, fragment, inverse)
        # d(a, c, b, c) up to the free a/b choice of the second hidden node
        assert inverse.size == 5
        assert inverse.children(inverse.root)[1] == "n13"
        assert inverse.children(inverse.root)[3] == "n14"

    def test_optimal_subgraph(self, benchmark):
        dtd, annotation, fragment = setup_objects()
        graphs = inversion_graphs(dtd, annotation, fragment)
        optimal = benchmark(graphs.optimal, "n11")
        assert optimal.cost == 2
