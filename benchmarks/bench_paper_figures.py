"""F1-F5: Figures 1-5 — the running example's objects, regenerated.

Each benchmark rebuilds a figure's object from scratch and asserts the
paper-exact structure (node identifiers included), so the timing covers
the real construction path a user would take.
"""

from repro import paperdata
from repro.dtd import view_dtd
from repro.automata import glushkov, parse_regex


class TestFig1Tree:
    def test_fig1(self, benchmark):
        tree = benchmark(paperdata.t0)
        assert tree.size == 11
        assert list(tree.nodes()) == [
            "n0", "n1", "n2", "n3", "n7", "n8", "n4", "n5", "n6", "n9", "n10",
        ]
        assert tree.child_labels("n0") == ("a", "b", "d", "a", "c", "d")


class TestFig2DTD:
    def test_fig2_construction(self, benchmark):
        dtd = benchmark(paperdata.d0)
        assert dtd.validates(paperdata.t0())

    def test_fig2_automata_language(self, benchmark):
        def check():
            r_model, d_model = paperdata.d0_fig2_automata()
            assert r_model.equivalent(glushkov(parse_regex("(a,(b|c),d)*")))
            assert d_model.equivalent(glushkov(parse_regex("((a|b),c)*")))
            return r_model

        model = benchmark(check)
        assert model.size == 3 + 4 + 1  # |Q| + |δ| + |F| as in the paper


class TestFig3View:
    def test_fig3_view_extraction(self, benchmark):
        annotation = paperdata.a0()
        source = paperdata.t0()
        view = benchmark(annotation.view, source)
        assert view == paperdata.view0()

    def test_fig3_view_dtd(self, benchmark):
        dtd, annotation = paperdata.d0(), paperdata.a0()
        derived = benchmark(view_dtd, dtd, annotation)
        assert derived.automaton("r").equivalent(glushkov(parse_regex("(a,d)*")))
        assert derived.automaton("d").equivalent(glushkov(parse_regex("c*")))


class TestFig4Script:
    def test_fig4_parse_and_validate(self, benchmark):
        script = benchmark(paperdata.s0)
        assert script.cost == 8
        assert script.input_tree == paperdata.view0()


class TestFig5Output:
    def test_fig5_output_tree(self, benchmark):
        script = paperdata.s0()

        def output():
            return script.apply_to(paperdata.view0())

        out = benchmark(output)
        assert out == paperdata.out_s0()
