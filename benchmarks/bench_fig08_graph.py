"""F8/F9: Figure 8 — the propagation graph G_{n6} — and Figure 9, the
update fragment its selected path yields."""

from repro import paperdata
from repro.core import PreferenceChooser, propagation_graphs


class TestFig8Graph:
    def test_collection_construction(self, benchmark):
        dtd = paperdata.d0(fig2_automata=True)
        collection = benchmark(
            propagation_graphs, dtd, paperdata.a0(), paperdata.t0(), paperdata.s0()
        )
        graph = collection["n6"]
        assert graph.n_vertices == 8
        assert collection.costs["n6"] == 2

    def test_fig9_fragment_from_path(self, benchmark):
        dtd = paperdata.d0(fig2_automata=True)
        collection = propagation_graphs(
            dtd, paperdata.a0(), paperdata.t0(), paperdata.s0()
        )
        chooser = PreferenceChooser()

        def fragment_script():
            return collection.build_script(chooser)

        script = benchmark(fragment_script)
        fragment = script.subscript("n6")
        assert fragment.shape() == paperdata.fig9_fragment().shape()
        # Nop(d)(Nop(b), Nop(c), Ins(a), Ins(c)) with n9/n10/n15 pinned
        assert fragment.children("n6")[0] == "n9"
        assert fragment.children("n6")[1] == "n10"
        assert fragment.children("n6")[3] == "n15"
