"""E2: Theorems 3-4 — propagation graphs are polynomial-size and built in
polynomial time (Section 4: "G(D,A,t,S) … can be constructed in time
polynomial in the size of D, t, and S")."""

import pytest

from repro.core import propagation_graphs
from repro.generators.workloads import hospital, running_example


@pytest.mark.parametrize("groups", [2, 8, 32, 128])
class TestSourceSizeScaling:
    def test_collection_build_scales_with_document(self, benchmark, groups):
        workload = running_example(groups)
        collection = benchmark(
            propagation_graphs,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["update_size"] = workload.update.size
        benchmark.extra_info["collection_size"] = collection.total_size
        # linear in |t| + |S| for the fixed D0 (quadratic worst case;
        # this workload's segments stay bounded)
        bound = 80 * (workload.source.size + workload.update.size)
        assert collection.total_size <= bound


@pytest.mark.parametrize("patients", [5, 20, 80])
class TestRealisticScaling:
    def test_hospital_workload_scales(self, benchmark, patients):
        workload = hospital(patients)
        collection = benchmark(
            propagation_graphs,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["collection_size"] = collection.total_size
        assert collection.min_cost() >= 0


class TestQuadraticSegmentWorstCase:
    """One long hidden run against one long inserted run: the vertex set
    of a single segment is |seg_t| × |Q| × |seg_S| — the polynomial
    worst case the paper's bound allows."""

    @pytest.mark.parametrize("run", [4, 16, 64])
    def test_segment_product(self, benchmark, run):
        from repro.dtd import DTD
        from repro.editing import UpdateBuilder
        from repro.views import Annotation
        from repro.xmltree import parse_term

        dtd = DTD({"r": "(h|v)*"})
        annotation = Annotation.hiding(("r", "h"))
        hidden = ", ".join(f"h#h{i}" for i in range(run))
        source = parse_term(f"r#n0({hidden})")
        view = annotation.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        for i in range(run):
            builder.insert("n0", parse_term(f"v#u{i}"))
        update = builder.script()
        collection = benchmark(
            propagation_graphs, dtd, annotation, source, update
        )
        graph = collection["n0"]
        benchmark.extra_info["vertices"] = graph.n_vertices
        # quadratic, as predicted: (run+1)^2 positions × |Q| states
        states = len(dtd.automaton("r").states)
        assert graph.n_vertices <= (run + 1) ** 2 * states
        assert graph.n_vertices >= (run + 1) ** 2
