#!/usr/bin/env python3
"""Regenerate the EXPERIMENTS.md measurement tables (see repro.reporting)."""

from repro.reporting import main

if __name__ == "__main__":
    raise SystemExit(main())
