"""E3: the tight exponential bound — "inserting k nodes a has 2^k optimal
propagations since the choices are independent" (Section 4, DTD D2)."""

import pytest

from repro import paperdata
from repro.core import count_min_propagations, propagation_graphs


@pytest.mark.parametrize("k", [1, 4, 8, 16, 32])
class TestTwoToTheK:
    def test_count_exactly_two_to_k(self, benchmark, k):
        source, update = paperdata.d2_update_insert_k(k)
        collection = propagation_graphs(
            paperdata.d2(), paperdata.a2(), source, update
        )
        count = benchmark(count_min_propagations, collection)
        benchmark.extra_info["k"] = k
        benchmark.extra_info["count"] = str(count)
        assert count == 2**k


class TestCountingStaysPolynomial:
    """The *count* is exponential; counting *time* is polynomial (DAG DP)."""

    @pytest.mark.parametrize("k", [64, 128])
    def test_large_k(self, benchmark, k):
        source, update = paperdata.d2_update_insert_k(k)
        collection = propagation_graphs(
            paperdata.d2(), paperdata.a2(), source, update
        )
        count = benchmark(count_min_propagations, collection)
        assert count == 2**k
        assert count.bit_length() == k + 1
