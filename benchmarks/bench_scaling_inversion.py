"""E1: Theorems 1-2 — inversion graphs are polynomial-size, built in
polynomial time (Section 3: "both the size of H(D,A,t′) … is polynomial
in the size of D and t′")."""

import pytest

from repro import paperdata
from repro.inversion import inversion_graphs, invert, verify_inverse
from repro.xmltree import parse_term


def scaled_view(groups: int):
    body = ", ".join(f"a#a{i}, d#d{i}(c#c{i})" for i in range(groups))
    return parse_term(f"r#v({body})")


@pytest.mark.parametrize("groups", [4, 16, 64, 256])
class TestInversionScaling:
    def test_graph_build_scales(self, benchmark, groups):
        dtd, annotation = paperdata.d0(), paperdata.a0()
        view = scaled_view(groups)
        graphs = benchmark(inversion_graphs, dtd, annotation, view)
        benchmark.extra_info["view_size"] = view.size
        benchmark.extra_info["collection_size"] = graphs.total_size
        # linear in the view for a fixed DTD: ≤ c·|t′| with generous c
        assert graphs.total_size <= 60 * view.size

    def test_invert_scales(self, benchmark, groups):
        dtd, annotation = paperdata.d0(), paperdata.a0()
        view = scaled_view(groups)
        inverse = benchmark(invert, dtd, annotation, view)
        assert verify_inverse(dtd, annotation, view, inverse)
        # one hidden (b|c) per group at r, one hidden (a|b) per c under d
        assert inverse.size == view.size + 2 * groups
        benchmark.extra_info["inverse_size"] = inverse.size


@pytest.mark.parametrize("alphabet_doubling", [1, 2, 4, 8])
class TestDTDSizeScaling:
    def test_graph_size_polynomial_in_dtd(self, benchmark, alphabet_doubling):
        """Grow the content model (more hidden alternatives); the graph
        grows linearly with |δ|, not exponentially."""
        from repro.dtd import DTD
        from repro.views import Annotation

        hidden = [f"h{i}" for i in range(alphabet_doubling * 2)]
        rule = f"({'|'.join(hidden)}),a"
        dtd = DTD({"r": rule})
        annotation = Annotation.hiding(*[("r", h) for h in hidden])
        view = parse_term("r#v(a#w)")
        graphs = benchmark(inversion_graphs, dtd, annotation, view)
        benchmark.extra_info["dtd_size"] = dtd.size
        benchmark.extra_info["collection_size"] = graphs.total_size
        assert graphs.total_size <= 8 * dtd.size
