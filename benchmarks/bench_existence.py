"""E5: Theorem 5 — every valid view update has a schema-compliant,
side-effect-free propagation. Measured as the success rate over a
randomized workload sweep (must be 100 %)."""

import random

import pytest

from repro.core import propagate, verify_propagation
from repro.generators import (
    random_annotation,
    random_dtd,
    random_tree,
    random_view_update,
)


def run_batch(seed_base: int, batch: int, size_hint: int) -> tuple[int, int]:
    successes = 0
    for offset in range(batch):
        rng = random.Random(seed_base + offset)
        dtd = random_dtd(rng, rng.randint(3, 6))
        annotation = random_annotation(rng, dtd, hide_probability=0.35)
        source = random_tree(dtd, rng, root_label="l0", size_hint=size_hint)
        update = random_view_update(rng, dtd, annotation, source, n_ops=3)
        script = propagate(dtd, annotation, source, update)
        if verify_propagation(dtd, annotation, source, update, script):
            successes += 1
    return successes, batch


@pytest.mark.parametrize("size_hint", [8, 20, 40])
class TestExistenceRate:
    def test_hundred_percent_success(self, benchmark, size_hint):
        successes, total = benchmark(run_batch, 1000 * size_hint, 20, size_hint)
        benchmark.extra_info["successes"] = successes
        benchmark.extra_info["total"] = total
        assert successes == total  # Theorem 5: no failures, ever
