"""E4: Section 5 — minimal trees can be exponential in |D| (the
aᵢ → aᵢ₋₁·aᵢ₋₁ family), yet their *sizes* are computed in polynomial
time; insertlets keep propagation itself tractable."""

import pytest

from repro import paperdata
from repro.dtd import minimal_size, minimal_sizes, minimal_tree


@pytest.mark.parametrize("n", [4, 16, 64, 256])
class TestExponentialSizes:
    def test_size_computation_polynomial(self, benchmark, n):
        dtd = paperdata.exponential_dtd(n)
        sizes = benchmark(minimal_sizes, dtd)
        benchmark.extra_info["n"] = n
        benchmark.extra_info["dtd_size"] = dtd.size
        benchmark.extra_info["min_tree_digits"] = len(str(sizes["a"]))
        assert sizes["a"] == 2 ** (n + 2) - 1


class TestMaterialisation:
    @pytest.mark.parametrize("n", [2, 6, 10])
    def test_small_instances_materialise(self, benchmark, n):
        dtd = paperdata.exponential_dtd(n)
        tree = benchmark(minimal_tree, dtd, "a")
        assert tree.size == minimal_size(dtd, "a")
        assert dtd.validates(tree)
        benchmark.extra_info["tree_size"] = tree.size
