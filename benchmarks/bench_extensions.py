"""E9 (beyond the paper): the Section 7 future-work extensions.

* node renaming — propagation through (vii)-edges, including renames
  that change the content model and force hidden insertions;
* multiple user views — minimising the disturbance secondary observers
  see, over the set of cost-optimal propagations.
"""

import pytest

from repro.core import propagate, verify_propagation
from repro.dtd import DTD
from repro.editing import UpdateBuilder
from repro.multiview import propagate_min_disturbance
from repro.views import Annotation
from repro.xmltree import parse_term


def rename_workload(n_articles: int):
    dtd = DTD(
        {
            "doc": "(article|note)*",
            "article": "title,audit?",
            "note": "title,audit?",
            "title": "",
            "audit": "",
        }
    )
    annotation = Annotation.hiding(("article", "audit"), ("note", "audit"))
    parts = ", ".join(
        f"article#a{i}(title#t{i}, audit#x{i})" for i in range(n_articles)
    )
    source = parse_term(f"doc#d({parts})")
    view = annotation.view(source)
    builder = UpdateBuilder(view, forbidden_ids=source.nodes())
    for i in range(0, n_articles, 2):
        builder.rename(f"a{i}", "note")
    return dtd, annotation, source, builder.script()


@pytest.mark.parametrize("n", [4, 16, 64])
class TestRenamePropagation:
    def test_bulk_rename(self, benchmark, n):
        dtd, annotation, source, update = rename_workload(n)
        script = benchmark(propagate, dtd, annotation, source, update)
        assert verify_propagation(dtd, annotation, source, update, script)
        # every rename costs exactly 1; hidden audits are kept in place
        assert script.cost == (n + 1) // 2
        benchmark.extra_info["renames"] = (n + 1) // 2


class TestMultiView:
    def test_min_disturbance_selection(self, benchmark):
        dtd = DTD({"r": "(v,(h1|h2))*", "v": "", "h1": "", "h2": ""})
        primary = Annotation.hiding(("r", "h1"), ("r", "h2"))
        auditor = Annotation.hiding(("r", "v"), ("r", "h2"))
        source = parse_term("r#n0(v#v1, h1#x1)")
        view = primary.view(source)
        builder = UpdateBuilder(view, forbidden_ids=source.nodes())
        builder.insert("n0", parse_term("v#u0"))
        update = builder.script()
        result = benchmark(
            propagate_min_disturbance,
            dtd, primary, {"auditor": auditor}, source, update,
        )
        assert result.disturbances["auditor"].is_silent
        benchmark.extra_info["candidates"] = result.candidates_considered
