"""E6: Theorem 6 — with insertlets and a polynomial Φ, propagation runs
in time polynomial in |D| + |t| + |S| + |W|. End-to-end timings across
document sizes and workload families, the cold-vs-warm ViewEngine
comparison (amortised per-update serving cost), the streaming
workload pitting a :class:`DocumentSession` against transient-engine
serving, and the durability columns quantifying write-ahead-log
overhead (``always``/``batch`` fsync vs in-memory serving). Run with
``REPRO_BENCH_SMOKE=1`` for a 2-update import-clean smoke pass.

Note the free :func:`repro.propagate` is served by the default engine
registry since the serving tier landed — the scaling benchmarks below
therefore measure amortised per-request propagation (the Theorem 6
quantity); the explicitly *cold* benchmarks build a transient
:class:`ViewEngine` per call to keep measuring full recompilation.
"""

import os
import random
import time

import pytest

from repro.core import InsertletPackage, propagate, verify_propagation
from repro.engine import ViewEngine
from repro.generators.updates import random_view_update
from repro.store import DocumentStore
from repro.generators.workloads import (
    catalog,
    deep_document,
    hospital,
    positional,
    running_example,
    wide_schema,
)


@pytest.mark.parametrize("groups", [2, 8, 32, 128])
class TestEndToEndScaling:
    def test_propagate_running_example(self, benchmark, groups):
        workload = running_example(groups)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )


FAMILIES = {
    "hospital": lambda: hospital(30),
    "catalog": lambda: catalog(30),
    "positional": lambda: positional(12),
    "deep_document": lambda: deep_document(8),
}


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
class TestWorkloadFamilies:
    def test_propagate_family(self, benchmark, family):
        workload = FAMILIES[family]()
        insertlets = InsertletPackage.minimal(workload.dtd)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
            factory=insertlets,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["update_cost"] = workload.update.cost
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )


# ---------------------------------------------------------------------------
# Cold vs warm engine: the compile-once/serve-many speedup, measured.
#
# "Cold" builds a transient ViewEngine per request, re-deriving every
# per-request schema artifact not memoized on the DTD itself — the view
# DTD (an automaton elimination per symbol), the visibility tables, and
# the factory (the minimal-size fixpoint and NFA orderings *are*
# DTD-memoized, so the cold path is already partially warm after the
# first call). "Warm" compiles one ViewEngine up front and serves the
# same batch from it. Per-update amortised time = round time / batch.
# ---------------------------------------------------------------------------

BATCH = 16

SERVING = {
    "running_example": lambda: running_example(32),
    "wide_schema": lambda: wide_schema(40),
}


@pytest.mark.parametrize("family", sorted(SERVING), ids=sorted(SERVING))
class TestColdVsWarmEngine:
    def test_cold_transient_engine_batch(self, benchmark, family):
        workload = SERVING[family]()
        updates = [workload.update] * BATCH

        def serve_cold():
            return [
                ViewEngine(workload.dtd, workload.annotation).propagate(
                    workload.source, u
                )
                for u in updates
            ]

        scripts = benchmark(serve_cold)
        benchmark.extra_info["batch"] = BATCH
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["alphabet"] = len(workload.dtd.alphabet)
        assert len(scripts) == BATCH

    def test_warm_engine_batch(self, benchmark, family):
        workload = SERVING[family]()
        updates = [workload.update] * BATCH
        engine = ViewEngine(workload.dtd, workload.annotation).warm_up()

        scripts = benchmark(engine.propagate_many, workload.source, updates)
        benchmark.extra_info["batch"] = BATCH
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["alphabet"] = len(workload.dtd.alphabet)
        # the warm path must be a pure speedup: byte-identical scripts
        cold = propagate(
            workload.dtd, workload.annotation, workload.source, workload.update
        )
        assert all(script.to_term() == cold.to_term() for script in scripts)


# ---------------------------------------------------------------------------
# Streaming: one hot document, N *sequential* updates — each built against
# the view the previous propagation produced. Transient serving recompiles
# the schema and rescans the document per update; a DocumentSession
# compiles once and carries the view/size/id caches forward. The scripts
# must be byte-identical (asserted below); the session must win on time.
# ---------------------------------------------------------------------------

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
STREAM_LENGTH = 2 if SMOKE else 50


def _sequential_stream(workload, length, seed=17):
    """Pregenerate a coherent stream of *length* sequential view updates
    (untimed; uses its own throwaway engine)."""
    dtd, annotation = workload.dtd, workload.annotation
    rng = random.Random(seed)
    scratch = ViewEngine(dtd, annotation).warm_up()
    updates = []
    current = workload.source
    for _ in range(length):
        update = random_view_update(
            rng, dtd, annotation, current,
            n_ops=2, derived_view_dtd=scratch.view_dtd,
        )
        updates.append(update)
        current = scratch.propagate(current, update).output_tree
    return updates


class TestStreamingSession:
    def test_session_beats_transient_serving(self):
        workload = wide_schema(24, sections=8)
        dtd, annotation = workload.dtd, workload.annotation
        updates = _sequential_stream(workload, STREAM_LENGTH)

        # -- transient: compile an engine per update, rescan everything --
        start = time.perf_counter()
        transient_scripts = []
        current = workload.source
        for update in updates:
            script = ViewEngine(dtd, annotation).propagate(current, update)
            transient_scripts.append(script)
            current = script.output_tree
        transient_elapsed = time.perf_counter() - start

        # -- session: compile once, carry the caches forward -------------
        start = time.perf_counter()
        engine = ViewEngine(dtd, annotation).warm_up()
        session = engine.session(workload.source)
        session_scripts = session.serve(updates)
        session_elapsed = time.perf_counter() - start

        # byte-identical serving is non-negotiable
        assert [s.to_term() for s in session_scripts] == [
            s.to_term() for s in transient_scripts
        ]
        assert session.source == current

        per_update_transient = transient_elapsed / len(updates) * 1000
        per_update_session = session_elapsed / len(updates) * 1000
        print(
            f"\nstreaming x{len(updates)}: transient "
            f"{per_update_transient:.2f} ms/update, session "
            f"{per_update_session:.2f} ms/update, "
            f"speedup {transient_elapsed / session_elapsed:.1f}x"
        )
        if not SMOKE:
            # N >= 50 amortises one compile over the stream: the session
            # must be measurably faster than transient serving
            assert session_elapsed < transient_elapsed, (
                f"session ({session_elapsed:.3f}s) not faster than "
                f"transient serving ({transient_elapsed:.3f}s)"
            )


# ---------------------------------------------------------------------------
# Durability overhead: the same streaming workload with the write-ahead
# log off (a plain in-memory session), in `batch` mode (fsync every 8
# records), and in `always` mode (fsync per record). The scripts must be
# byte-identical in all three columns — the WAL is an observer — so the
# only thing the columns may differ in is time.
# ---------------------------------------------------------------------------


class TestDurableStreaming:
    def test_wal_overhead_columns(self, tmp_path):
        workload = wide_schema(24, sections=8)
        dtd, annotation = workload.dtd, workload.annotation
        updates = _sequential_stream(workload, STREAM_LENGTH)
        engine = ViewEngine(dtd, annotation).warm_up()

        # -- WAL off: the in-memory baseline --------------------------
        start = time.perf_counter()
        session = engine.session(workload.source)
        baseline_scripts = session.serve(updates)
        off_elapsed = time.perf_counter() - start

        columns = {"off (in-memory)": (off_elapsed, baseline_scripts)}

        # -- WAL on, batch and always fsync ---------------------------
        for policy in ("batch", "always"):
            store = DocumentStore.init(tmp_path / f"store-{policy}")
            store.put("doc", workload.source, dtd, annotation)
            start = time.perf_counter()
            with store.open_session(
                "doc", engine=engine, fsync=policy
            ) as durable:
                scripts = durable.serve(updates)
            elapsed = time.perf_counter() - start
            columns[f"wal {policy}"] = (elapsed, scripts)
            # durability must be pure overhead, never different serving
            assert [s.to_term() for s in scripts] == [
                s.to_term() for s in baseline_scripts
            ]
            assert store.load("doc") == session.source

        print(f"\ndurable streaming x{len(updates)}:")
        for name, (elapsed, _) in columns.items():
            per_update = elapsed / len(updates) * 1000
            overhead = (elapsed / off_elapsed - 1) * 100
            print(
                f"  {name:18s} {per_update:8.2f} ms/update "
                f"({overhead:+6.1f}% vs in-memory)"
            )
