"""E6: Theorem 6 — with insertlets and a polynomial Φ, propagation runs
in time polynomial in |D| + |t| + |S| + |W|. End-to-end timings across
document sizes and workload families, plus the cold-vs-warm ViewEngine
comparison (amortised per-update serving cost)."""

import pytest

from repro.core import InsertletPackage, propagate, verify_propagation
from repro.engine import ViewEngine
from repro.generators.workloads import (
    catalog,
    deep_document,
    hospital,
    positional,
    running_example,
    wide_schema,
)


@pytest.mark.parametrize("groups", [2, 8, 32, 128])
class TestEndToEndScaling:
    def test_propagate_running_example(self, benchmark, groups):
        workload = running_example(groups)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )


FAMILIES = {
    "hospital": lambda: hospital(30),
    "catalog": lambda: catalog(30),
    "positional": lambda: positional(12),
    "deep_document": lambda: deep_document(8),
}


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
class TestWorkloadFamilies:
    def test_propagate_family(self, benchmark, family):
        workload = FAMILIES[family]()
        insertlets = InsertletPackage.minimal(workload.dtd)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
            factory=insertlets,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["update_cost"] = workload.update.cost
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )


# ---------------------------------------------------------------------------
# Cold vs warm engine: the compile-once/serve-many speedup, measured.
#
# "Cold" is the legacy free-function path: every propagate() call
# re-derives the per-request schema artifacts that are not memoized on
# the DTD itself — the view DTD (an automaton elimination per symbol),
# the visibility tables, and the factory (the minimal-size fixpoint and
# NFA orderings *are* DTD-memoized, so the cold path is already partially
# warm after the first call). "Warm" compiles one ViewEngine up front
# and serves the same batch from it. Per-update amortised time =
# round time / batch.
# ---------------------------------------------------------------------------

BATCH = 16

SERVING = {
    "running_example": lambda: running_example(32),
    "wide_schema": lambda: wide_schema(40),
}


@pytest.mark.parametrize("family", sorted(SERVING), ids=sorted(SERVING))
class TestColdVsWarmEngine:
    def test_cold_free_function_batch(self, benchmark, family):
        workload = SERVING[family]()
        updates = [workload.update] * BATCH

        def serve_cold():
            return [
                propagate(
                    workload.dtd, workload.annotation, workload.source, u
                )
                for u in updates
            ]

        scripts = benchmark(serve_cold)
        benchmark.extra_info["batch"] = BATCH
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["alphabet"] = len(workload.dtd.alphabet)
        assert len(scripts) == BATCH

    def test_warm_engine_batch(self, benchmark, family):
        workload = SERVING[family]()
        updates = [workload.update] * BATCH
        engine = ViewEngine(workload.dtd, workload.annotation).warm_up()

        scripts = benchmark(engine.propagate_many, workload.source, updates)
        benchmark.extra_info["batch"] = BATCH
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["alphabet"] = len(workload.dtd.alphabet)
        # the warm path must be a pure speedup: byte-identical scripts
        cold = propagate(
            workload.dtd, workload.annotation, workload.source, workload.update
        )
        assert all(script.to_term() == cold.to_term() for script in scripts)
