"""E6: Theorem 6 — with insertlets and a polynomial Φ, propagation runs
in time polynomial in |D| + |t| + |S| + |W|. End-to-end timings across
document sizes and workload families, the cold-vs-warm ViewEngine
comparison (amortised per-update serving cost), the streaming
workload pitting a :class:`DocumentSession` against transient-engine
serving, the cross-request memoization and process-pool columns of the
propagation fast path, and the durability columns quantifying
write-ahead-log overhead (``always``/``batch``/group-commit fsync vs
in-memory serving). Run with ``REPRO_BENCH_SMOKE=1`` for a 2-update
import-clean smoke pass.

Run **as a script** to emit the machine-readable perf trajectory::

    python benchmarks/bench_end_to_end.py --json BENCH_PR9.json [--smoke]

writing per-workload medians for the five serving modes (cold, warm,
session, memoized, process-pool) plus the WAL, replication, served,
sharded and ``cold_start`` columns (the persistent disk-cache tier's
restart win) — the checked-in ``BENCH_PR9.json`` is that output, and
CI's ``bench-smoke`` job fails on regressions against it
(``benchmarks/check_regression.py``).

Note the free :func:`repro.propagate` is served by the default engine
registry since the serving tier landed — the scaling benchmarks below
therefore measure amortised per-request propagation (the Theorem 6
quantity); the explicitly *cold* benchmarks build a transient
:class:`ViewEngine` per call to keep measuring full recompilation.
"""

import json
import os
import random
import statistics
import time

import pytest

from repro.core import InsertletPackage, propagate, verify_propagation
from repro.editing import UpdateBuilder
from repro.engine import ViewEngine
from repro.generators.updates import random_view_update
from repro.sharding import ShardedDocument
from repro.store import DocumentStore
from repro.xmltree import parse_term
from repro.generators.workloads import (
    catalog,
    deep_document,
    hospital,
    huge_document,
    positional,
    running_example,
    wide_schema,
)


@pytest.mark.parametrize("groups", [2, 8, 32, 128])
class TestEndToEndScaling:
    def test_propagate_running_example(self, benchmark, groups):
        workload = running_example(groups)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )


FAMILIES = {
    "hospital": lambda: hospital(30),
    "catalog": lambda: catalog(30),
    "positional": lambda: positional(12),
    "deep_document": lambda: deep_document(8),
}


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
class TestWorkloadFamilies:
    def test_propagate_family(self, benchmark, family):
        workload = FAMILIES[family]()
        insertlets = InsertletPackage.minimal(workload.dtd)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
            factory=insertlets,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["update_cost"] = workload.update.cost
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )


# ---------------------------------------------------------------------------
# Cold vs warm engine: the compile-once/serve-many speedup, measured.
#
# "Cold" builds a transient ViewEngine per request, re-deriving every
# per-request schema artifact not memoized on the DTD itself — the view
# DTD (an automaton elimination per symbol), the visibility tables, and
# the factory (the minimal-size fixpoint and NFA orderings *are*
# DTD-memoized, so the cold path is already partially warm after the
# first call). "Warm" compiles one ViewEngine up front and serves the
# same batch from it. Per-update amortised time = round time / batch.
# ---------------------------------------------------------------------------

BATCH = 16

SERVING = {
    "running_example": lambda: running_example(32),
    "wide_schema": lambda: wide_schema(40),
}


@pytest.mark.parametrize("family", sorted(SERVING), ids=sorted(SERVING))
class TestColdVsWarmEngine:
    def test_cold_transient_engine_batch(self, benchmark, family):
        workload = SERVING[family]()
        updates = [workload.update] * BATCH

        def serve_cold():
            return [
                ViewEngine(workload.dtd, workload.annotation).propagate(
                    workload.source, u
                )
                for u in updates
            ]

        scripts = benchmark(serve_cold)
        benchmark.extra_info["batch"] = BATCH
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["alphabet"] = len(workload.dtd.alphabet)
        assert len(scripts) == BATCH

    def test_warm_engine_batch(self, benchmark, family):
        workload = SERVING[family]()
        updates = [workload.update] * BATCH
        engine = ViewEngine(workload.dtd, workload.annotation).warm_up()

        scripts = benchmark(engine.propagate_many, workload.source, updates)
        benchmark.extra_info["batch"] = BATCH
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["alphabet"] = len(workload.dtd.alphabet)
        # the warm path must be a pure speedup: byte-identical scripts
        cold = propagate(
            workload.dtd, workload.annotation, workload.source, workload.update
        )
        assert all(script.to_term() == cold.to_term() for script in scripts)


# ---------------------------------------------------------------------------
# Streaming: one hot document, N *sequential* updates — each built against
# the view the previous propagation produced. Transient serving recompiles
# the schema and rescans the document per update; a DocumentSession
# compiles once and carries the view/size/id caches forward. The scripts
# must be byte-identical (asserted below); the session must win on time.
# ---------------------------------------------------------------------------

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
STREAM_LENGTH = 2 if SMOKE else 50


def _sequential_stream(workload, length, seed=17):
    """Pregenerate a coherent stream of *length* sequential view updates
    (untimed; uses its own throwaway engine)."""
    dtd, annotation = workload.dtd, workload.annotation
    rng = random.Random(seed)
    scratch = ViewEngine(dtd, annotation).warm_up()
    updates = []
    current = workload.source
    for _ in range(length):
        update = random_view_update(
            rng, dtd, annotation, current,
            n_ops=2, derived_view_dtd=scratch.view_dtd,
        )
        updates.append(update)
        current = scratch.propagate(current, update).output_tree
    return updates


class TestStreamingSession:
    def test_session_beats_transient_serving(self):
        workload = wide_schema(24, sections=8)
        dtd, annotation = workload.dtd, workload.annotation
        updates = _sequential_stream(workload, STREAM_LENGTH)

        # -- transient: compile an engine per update, rescan everything --
        start = time.perf_counter()
        transient_scripts = []
        current = workload.source
        for update in updates:
            script = ViewEngine(dtd, annotation).propagate(current, update)
            transient_scripts.append(script)
            current = script.output_tree
        transient_elapsed = time.perf_counter() - start

        # -- session: compile once, carry the caches forward -------------
        start = time.perf_counter()
        engine = ViewEngine(dtd, annotation).warm_up()
        session = engine.session(workload.source)
        session_scripts = session.serve(updates)
        session_elapsed = time.perf_counter() - start

        # byte-identical serving is non-negotiable
        assert [s.to_term() for s in session_scripts] == [
            s.to_term() for s in transient_scripts
        ]
        assert session.source == current

        per_update_transient = transient_elapsed / len(updates) * 1000
        per_update_session = session_elapsed / len(updates) * 1000
        print(
            f"\nstreaming x{len(updates)}: transient "
            f"{per_update_transient:.2f} ms/update, session "
            f"{per_update_session:.2f} ms/update, "
            f"speedup {transient_elapsed / session_elapsed:.1f}x"
        )
        if not SMOKE:
            # N >= 50 amortises one compile over the stream: the session
            # must be measurably faster than transient serving
            assert session_elapsed < transient_elapsed, (
                f"session ({session_elapsed:.3f}s) not faster than "
                f"transient serving ({transient_elapsed:.3f}s)"
            )


# ---------------------------------------------------------------------------
# Durability overhead: the same streaming workload with the write-ahead
# log off (a plain in-memory session), in `batch` mode (fsync every 8
# records), and in `always` mode (fsync per record). The scripts must be
# byte-identical in all three columns — the WAL is an observer — so the
# only thing the columns may differ in is time.
# ---------------------------------------------------------------------------


class TestDurableStreaming:
    def test_wal_overhead_columns(self, tmp_path):
        workload = wide_schema(24, sections=8)
        dtd, annotation = workload.dtd, workload.annotation
        updates = _sequential_stream(workload, STREAM_LENGTH)
        engine = ViewEngine(dtd, annotation).warm_up()

        # -- WAL off: the in-memory baseline --------------------------
        start = time.perf_counter()
        session = engine.session(workload.source)
        baseline_scripts = session.serve(updates)
        off_elapsed = time.perf_counter() - start

        columns = {"off (in-memory)": (off_elapsed, baseline_scripts)}

        # -- WAL on, batch and always fsync ---------------------------
        for policy in ("batch", "always"):
            store = DocumentStore.init(tmp_path / f"store-{policy}")
            store.put("doc", workload.source, dtd, annotation)
            start = time.perf_counter()
            with store.open_session(
                "doc", engine=engine, fsync=policy
            ) as durable:
                scripts = durable.serve(updates)
            elapsed = time.perf_counter() - start
            columns[f"wal {policy}"] = (elapsed, scripts)
            # durability must be pure overhead, never different serving
            assert [s.to_term() for s in scripts] == [
                s.to_term() for s in baseline_scripts
            ]
            assert store.load("doc") == session.source

        print(f"\ndurable streaming x{len(updates)}:")
        for name, (elapsed, _) in columns.items():
            per_update = elapsed / len(updates) * 1000
            overhead = (elapsed / off_elapsed - 1) * 100
            print(
                f"  {name:18s} {per_update:8.2f} ms/update "
                f"({overhead:+6.1f}% vs in-memory)"
            )


# ---------------------------------------------------------------------------
# Replication: the WAL shipped, applied, and served from a standby. The
# engine never re-runs on the replica path — shipping is file and frame
# I/O — so keeping a standby byte-identical must cost a fraction of the
# propagation work that produced the records. Asserted byte-identical.
# ---------------------------------------------------------------------------


class TestReplicationShipping:
    def test_standby_keeps_up_with_the_primary(self, tmp_path):
        from repro.replication import StandbyStore, replicate

        workload = wide_schema(8 if SMOKE else 24, sections=8)
        dtd, annotation = workload.dtd, workload.annotation
        updates = _sequential_stream(workload, STREAM_LENGTH)
        engine = ViewEngine(dtd, annotation).warm_up()

        primary = DocumentStore.init(tmp_path / "primary", fsync="off")
        primary.put("doc", workload.source, dtd, annotation)
        standby = StandbyStore.init(
            tmp_path / "standby", primary_root=tmp_path / "primary"
        )
        replicate(primary, standby)
        reader = standby.replica_session("doc")

        serve_elapsed = ship_elapsed = 0.0
        with primary.open_session("doc", engine=engine) as session:
            for update in updates:
                start = time.perf_counter()
                session.propagate(update)
                serve_elapsed += time.perf_counter() - start
                start = time.perf_counter()
                replicate(primary, standby)
                reader.refresh()
                ship_elapsed += time.perf_counter() - start
            # a fully caught-up replica serves the primary's exact state
            assert reader.lag() == 0
            assert reader.view == session.view
            assert reader.source == session.source

        print(
            f"\nreplication x{len(updates)} records: "
            f"serve {serve_elapsed / len(updates) * 1000:.2f} ms/update, "
            f"ship+refresh {ship_elapsed / len(updates) * 1000:.2f} "
            f"ms/record ({ship_elapsed / serve_elapsed * 100:.0f}% of "
            "propagation cost)"
        )


class TestReplicationFollowing:
    def test_replication_follow_daemon_bounds_live_lag(self, tmp_path):
        """The follow daemon over real TCP: every propagation lands on
        the standby without a manual ship, and the steady-state lag is
        zero once the stream stops — the live analogue of the one-shot
        shipping column."""
        from repro.errors import UnknownDocumentError
        from repro.replication import FollowerServer, ShipperDaemon, StandbyStore

        def applied(standby_store):
            try:
                return standby_store.applied_seq("doc")
            except UnknownDocumentError:
                return -1  # bootstrap not durably applied yet

        workload = wide_schema(8 if SMOKE else 24, sections=8)
        dtd, annotation = workload.dtd, workload.annotation
        updates = _sequential_stream(workload, STREAM_LENGTH)
        engine = ViewEngine(dtd, annotation).warm_up()

        primary = DocumentStore.init(tmp_path / "primary", fsync="off")
        primary.put("doc", workload.source, dtd, annotation)
        standby = StandbyStore.init(
            tmp_path / "standby", primary_root=tmp_path / "primary"
        )
        latencies = []
        with FollowerServer(standby, listen=("127.0.0.1", 0)) as follower:
            with ShipperDaemon(
                primary, connect=[follower.address], poll_interval=0.05
            ) as daemon:
                assert daemon.wait_caught_up(timeout=30)
                with primary.open_session("doc", engine=engine) as session:
                    for index, update in enumerate(updates, start=1):
                        session.propagate(update)
                        start = time.perf_counter()
                        while applied(standby) < index:
                            if time.perf_counter() - start > 30:
                                raise AssertionError(
                                    f"standby never applied seq {index}"
                                )
                            time.sleep(0.001)
                        latencies.append(time.perf_counter() - start)
                (link,) = daemon.links
                assert not any(link.shipper.lag().values())  # zero lag
        primary_wal = (tmp_path / "primary/docs/doc/wal.log").read_bytes()
        assert (tmp_path / "standby/docs/doc/wal.log").read_bytes() == primary_wal
        print(
            f"\nreplication follow x{len(updates)} updates: ship latency "
            f"median {statistics.median(latencies) * 1000:.2f} ms/update, "
            "steady lag 0"
        )


# ---------------------------------------------------------------------------
# Memoization: the same (source, update) request arriving again and again —
# retries, idempotent replays, many clients making the same change. A warm
# engine with the memo off rebuilds every graph per request; with the memo
# on, repeats cost one content hash. Byte-identical scripts, asserted.
# ---------------------------------------------------------------------------

MEMO_REPEATS = 4 if SMOKE else 16


class TestMemoizedServing:
    def test_memo_beats_warm_engine_on_repeats(self):
        workload = hospital(8 if SMOKE else 120)
        dtd, annotation = workload.dtd, workload.annotation

        warm = ViewEngine(dtd, annotation, memo_capacity=0).warm_up()
        start = time.perf_counter()
        warm_scripts = [
            warm.propagate(workload.source, workload.update)
            for _ in range(MEMO_REPEATS)
        ]
        warm_elapsed = time.perf_counter() - start

        memo = ViewEngine(dtd, annotation).warm_up()
        memo.propagate(workload.source, workload.update)  # prime (one miss)
        start = time.perf_counter()
        memo_scripts = [
            memo.propagate(workload.source, workload.update)
            for _ in range(MEMO_REPEATS)
        ]
        memo_elapsed = time.perf_counter() - start

        # memoization must be invisible in the bytes
        assert [s.to_term() for s in memo_scripts] == [
            s.to_term() for s in warm_scripts
        ]
        assert memo.stats.memo_hits == MEMO_REPEATS

        per_warm = warm_elapsed / MEMO_REPEATS * 1000
        per_memo = memo_elapsed / MEMO_REPEATS * 1000
        speedup = warm_elapsed / memo_elapsed if memo_elapsed else float("inf")
        print(
            f"\nrepeated identical update x{MEMO_REPEATS}: warm "
            f"{per_warm:.2f} ms/update, memoized {per_memo:.3f} ms/update, "
            f"speedup {speedup:.1f}x"
        )
        if not SMOKE:
            # the acceptance floor is 5x; assert a conservative margin so
            # noisy CI boxes do not flake
            assert speedup > 2, (
                f"memoized serving ({per_memo:.3f} ms) not faster than a "
                f"warm engine ({per_warm:.3f} ms)"
            )


# ---------------------------------------------------------------------------
# Process pool: a CPU-bound many-document batch served by worker processes.
# On a single-core box the pool only adds pickling overhead — the column
# exists for byte-identity and for recording the crossover on real hardware.
# ---------------------------------------------------------------------------


class TestProcessPoolServing:
    def test_process_pool_matches_serial(self):
        workload = hospital(6 if SMOKE else 40)
        dtd, annotation = workload.dtd, workload.annotation
        engine = ViewEngine(dtd, annotation).warm_up()
        batch = [(workload.source, workload.update)] * (4 if SMOKE else 16)

        serial = engine.propagate_many(list(batch), memo=False)
        pooled = engine.propagate_many(
            list(batch), parallel="process", workers=min(4, os.cpu_count() or 1)
        )
        assert [s.to_term() for s in pooled] == [s.to_term() for s in serial]


# ---------------------------------------------------------------------------
# Sharded streaming: one huge document split at the spine across workers.
# The claim under test is **size independence** — with `splice=False` and
# dirty hints, serving an interior edit costs the touched shard, not the
# document, so per-edit latency at 100k nodes must stay within 2x of the
# 10k-node latency. (Unsharded sessions scan per update: their per-edit
# cost grows with the document.) Byte-identity of the spliced script is
# spot-checked against an unsharded session at the small size.
# ---------------------------------------------------------------------------


def _huge_interior_stream(workload, length, seed=29):
    """Pregenerate *length* sequential interior edits (one new paragraph
    each, rotating over chapters) plus their dirty hints. Untimed."""
    rng = random.Random(seed)
    chapters = list(workload.source.children(workload.source.root))
    view = workload.annotation.view(workload.source)
    forbidden = set(workload.source.nodes())
    updates, hints = [], []
    for index in range(length):
        chapter = chapters[rng.randrange(len(chapters))]
        section = next(
            kid
            for kid in view.children(chapter)
            if view.label(kid) == "section"
        )
        builder = UpdateBuilder(view, forbidden_ids=forbidden)
        node = f"q{index}"
        builder.insert(section, parse_term(f"para#{node}"), index=0)
        update = builder.script()
        updates.append(update)
        hints.append([node])
        forbidden.add(node)
        view = update.output_tree
    return updates, hints


def _sharded_latency_ms(engine, workload, updates, hints):
    """Median per-edit latency (ms) of no-splice hinted sharded serving."""
    doc = ShardedDocument(engine, workload.source, depth=1, validate_source=False)
    times = []
    try:
        for update, hint in zip(updates, hints):
            start = time.perf_counter()
            doc.propagate(update, dirty=hint, splice=False)
            times.append(time.perf_counter() - start)
    finally:
        doc.close()
    return statistics.median(times) * 1000


def _sharded_streaming_modes(smoke: bool) -> dict:
    small_n, large_n = (1_000, 4_000) if smoke else (10_000, 100_000)
    length = 4 if smoke else 30
    small = huge_document(small_n)
    large = huge_document(large_n)
    engine = ViewEngine(small.dtd, small.annotation).warm_up()

    # byte-identity spot check (spliced) at the small size
    check_updates, check_hints = _huge_interior_stream(small, min(length, 4))
    session = engine.session(small.source)
    with ShardedDocument(
        engine, small.source, depth=1, validate_source=False
    ) as doc:
        for update, hint in zip(check_updates, check_hints):
            sharded = doc.propagate(update, dirty=hint, splice=True)
            assert sharded.to_term() == session.propagate(update).to_term()

    small_updates, small_hints = _huge_interior_stream(small, length)
    large_updates, large_hints = _huge_interior_stream(large, length)
    small_ms = _sharded_latency_ms(engine, small, small_updates, small_hints)
    large_ms = _sharded_latency_ms(engine, large, large_updates, large_hints)

    # the unsharded comparison column at the small size only (at the
    # large size it is exactly the O(|t|)-per-edit cost sharding removes)
    unsharded = engine.session(small.source)
    times = []
    for update in small_updates:
        start = time.perf_counter()
        unsharded.propagate(update)
        times.append(time.perf_counter() - start)
    unsharded_small_ms = statistics.median(times) * 1000

    return {
        "small_nodes": small.source.size,
        "large_nodes": large.source.size,
        "stream_length": length,
        "sharded_small_ms_per_update": small_ms,
        "sharded_large_ms_per_update": large_ms,
        "unsharded_small_ms_per_update": unsharded_small_ms,
        # >= 0.5 is the acceptance line: the large document costs at
        # most 2x the small one per edit
        "size_independence": small_ms / large_ms if large_ms else 1.0,
    }


class TestShardedStreaming:
    def test_sharded_latency_is_size_independent(self):
        modes = _sharded_streaming_modes(SMOKE)
        ratio = modes["size_independence"]
        print(
            f"\nsharded streaming ({modes['small_nodes']} vs "
            f"{modes['large_nodes']} nodes, x{modes['stream_length']}): "
            f"{modes['sharded_small_ms_per_update']:.2f} vs "
            f"{modes['sharded_large_ms_per_update']:.2f} ms/edit "
            f"(size independence {ratio:.2f}, unsharded small "
            f"{modes['unsharded_small_ms_per_update']:.2f} ms/edit)"
        )
        if not SMOKE:
            assert ratio >= 0.5, (
                f"per-edit latency at {modes['large_nodes']} nodes is "
                f"{1 / ratio:.1f}x the {modes['small_nodes']}-node latency "
                "(acceptance: within 2x)"
            )


# ---------------------------------------------------------------------------
# The machine-readable perf trajectory (python bench_end_to_end.py --json).
# ---------------------------------------------------------------------------


def _median_seconds(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _repeated_update_modes(workload, repeats: int, rounds: int) -> dict:
    """Median ms/request for the four single-request serving modes."""
    dtd, annotation = workload.dtd, workload.annotation
    source, update = workload.source, workload.update
    reference = ViewEngine(dtd, annotation, memo_capacity=0).propagate(
        source, update
    ).to_term()

    def serve_cold():
        for _ in range(repeats):
            ViewEngine(dtd, annotation, memo_capacity=0).propagate(source, update)

    warm_engine = ViewEngine(dtd, annotation, memo_capacity=0).warm_up()

    def serve_warm():
        for _ in range(repeats):
            warm_engine.propagate(source, update)

    memo_engine = ViewEngine(dtd, annotation).warm_up()
    assert memo_engine.propagate(source, update).to_term() == reference

    def serve_memoized():
        for _ in range(repeats):
            memo_engine.propagate(source, update)

    batch = [(source, update)] * repeats

    def serve_process_pool():
        memo_engine.propagate_many(batch, parallel="process")

    modes = {
        "cold_ms": _median_seconds(serve_cold, rounds),
        "warm_ms": _median_seconds(serve_warm, rounds),
        "memoized_ms": _median_seconds(serve_memoized, rounds),
        "process_pool_ms": _median_seconds(serve_process_pool, rounds),
    }
    per_request = {key: value / repeats * 1000 for key, value in modes.items()}
    per_request["memoized_speedup_vs_warm"] = (
        per_request["warm_ms"] / per_request["memoized_ms"]
    )
    per_request["memoized_speedup_vs_cold"] = (
        per_request["cold_ms"] / per_request["memoized_ms"]
    )
    per_request["repeats"] = repeats
    return per_request


def _cold_start_modes(workload, rounds: int, tmp_root) -> dict:
    """Cold-start-to-first-propagation: empty vs warmed disk cache.

    Three first-request latencies for one known ``(source, update)``:

    * ``cold`` — a fresh registry with no disk tier (full schema
      compilation plus propagation-graph construction);
    * ``disk_warm`` — a fresh registry attached to a populated
      :class:`~repro.cache.DiskCache` (artifact hydration plus a disk
      memo hit: no compile, no graphs — the restart/fleet story);
    * ``memory_warm`` — a repeat on an already-hot engine (the
      in-memory memo ceiling).

    Every mode asserts byte-identity against the cache-free reference.
    """
    from pathlib import Path

    from repro.cache import DiskCache
    from repro.registry import EngineRegistry

    dtd, annotation = workload.dtd, workload.annotation
    source, update = workload.source, workload.update
    reference = ViewEngine(dtd, annotation).propagate(source, update).to_term()

    root = Path(tmp_root) / "cold-start-cache"
    seed_registry = EngineRegistry()
    seed_registry.attach_disk_tier(DiskCache(root))
    seeded = seed_registry.get_or_compile(dtd, annotation).propagate(source, update)
    assert seeded.to_term() == reference

    def first_propagation_cold():
        engine = EngineRegistry().get_or_compile(dtd, annotation)
        assert engine.propagate(source, update).to_term() == reference

    def first_propagation_disk_warm():
        registry = EngineRegistry()
        registry.attach_disk_tier(DiskCache(root))
        engine = registry.get_or_compile(dtd, annotation)
        script = engine.propagate(source, update)
        assert engine.stats.disk_memo_hits == 1  # no graphs were built
        assert script.to_term() == reference

    cold = _median_seconds(first_propagation_cold, rounds)
    disk_warm = _median_seconds(first_propagation_disk_warm, rounds)
    hot_engine = ViewEngine(dtd, annotation).warm_up()
    assert hot_engine.propagate(source, update).to_term() == reference

    def repeat_on_hot_engine():
        hot_engine.propagate(source, update)

    memory_warm = _median_seconds(repeat_on_hot_engine, rounds)
    return {
        "cold_ms": cold * 1000,
        "disk_warm_ms": disk_warm * 1000,
        "memory_warm_ms": memory_warm * 1000,
        "warm_speedup": cold / disk_warm,
        "disk_hit_vs_memory_hit": disk_warm / memory_warm,
        "cold_vs_memory_hit": cold / memory_warm,
    }


def _streaming_modes(workload, length: int, rounds: int) -> dict:
    """Median ms/update for transient-engine vs session streaming."""
    dtd, annotation = workload.dtd, workload.annotation
    updates = _sequential_stream(workload, length)

    def serve_transient():
        current = workload.source
        for update in updates:
            script = ViewEngine(dtd, annotation).propagate(current, update)
            current = script.output_tree

    engine = ViewEngine(dtd, annotation).warm_up()

    def serve_session():
        session = engine.session(workload.source)
        session.serve(updates)

    transient = _median_seconds(serve_transient, rounds)
    session = _median_seconds(serve_session, rounds)
    return {
        "stream_length": len(updates),
        "transient_ms_per_update": transient / len(updates) * 1000,
        "session_ms_per_update": session / len(updates) * 1000,
        "session_speedup_vs_transient": transient / session,
    }


def _wal_modes(workload, length: int, tmp_root, rounds: int) -> dict:
    """ms/update for in-memory vs WAL policies (incl. group commit)."""
    from pathlib import Path

    dtd, annotation = workload.dtd, workload.annotation
    updates = _sequential_stream(workload, length)
    engine = ViewEngine(dtd, annotation).warm_up()
    engine.session(workload.source).serve(updates)  # warm every lazy cache

    off_elapsed = _median_seconds(
        lambda: engine.session(workload.source).serve(updates), rounds
    )
    columns = {"in_memory_ms_per_update": off_elapsed / len(updates) * 1000}

    flavours = {
        "wal_batch": {"fsync": "batch"},
        "wal_always": {"fsync": "always"},
        "wal_group_commit": {
            "fsync": "batch",
            "group_commit": True,
            "group_window": 0.002,
        },
    }
    for name, kwargs in flavours.items():
        times = []
        for round_index in range(rounds):
            # a fresh store per round (the stream only applies once), but
            # only the serving itself is timed — setup and recovery are not
            # per-update costs
            store = DocumentStore.init(
                Path(tmp_root) / f"store-{name}-{round_index}", **kwargs
            )
            store.put("doc", workload.source, dtd, annotation)
            with store.open_session("doc", engine=engine) as durable:
                start = time.perf_counter()
                durable.serve(updates)
                times.append(time.perf_counter() - start)
            store.close()
        elapsed = statistics.median(times)
        columns[f"{name}_ms_per_update"] = elapsed / len(updates) * 1000
        columns[f"{name}_overhead_pct"] = (elapsed / off_elapsed - 1) * 100
    return columns


def _replication_modes(workload, length: int, tmp_root, rounds: int) -> dict:
    """Per-record shipping cost and standby serving costs (not gated by
    check_regression — absolute I/O times are machine-bound; tracked for
    the trajectory)."""
    from pathlib import Path

    from repro.replication import QueueTransport, StandbyStore, WalShipper, replicate

    dtd, annotation = workload.dtd, workload.annotation
    updates = _sequential_stream(workload, length)
    engine = ViewEngine(dtd, annotation).warm_up()
    primary = DocumentStore.init(Path(tmp_root) / "repl-primary", fsync="off")
    primary.put("doc", workload.source, dtd, annotation)
    with primary.open_session("doc", engine=engine) as session:
        session.serve(updates)

    # bootstrap + full-stream catch-up of a fresh standby, per record
    ship_times = []
    for round_index in range(rounds):
        standby = StandbyStore.init(
            Path(tmp_root) / f"repl-standby-{round_index}"
        )
        transport = QueueTransport()
        start = time.perf_counter()
        WalShipper(primary, transport).ship_all()
        standby.apply_frames(transport.drain())
        ship_times.append(time.perf_counter() - start)
        assert standby.applied_seq("doc") == len(updates)
    ship_elapsed = statistics.median(ship_times)

    # serving side: a warm replica session's no-op refresh vs rebuilding
    # the whole session from snapshot + log
    standby = StandbyStore.init(
        Path(tmp_root) / "repl-standby-serve", primary_root=primary.root
    )
    replicate(primary, standby)
    reader = standby.replica_session("doc")
    rebuild = _median_seconds(lambda: standby.replica_session("doc"), rounds)
    refresh = _median_seconds(reader.refresh, rounds)

    # -- followed standby: the live daemon over real TCP ----------------
    # per-update ship latency = propagate acknowledged -> standby durably
    # applied, with the daemon's append hook doing the waking; the gated
    # ratio follow_lag_bounded = 1/(1+final_lag) is 1.0 exactly when the
    # feed converged to zero lag (a correctness gate dressed as a ratio,
    # immune to machine speed)
    from repro.errors import UnknownDocumentError
    from repro.replication import FollowerServer, ShipperDaemon

    def applied(standby_store):
        # the bootstrap frame may not have durably applied yet — the doc
        # simply does not exist on the standby until it does
        try:
            return standby_store.applied_seq("doc")
        except UnknownDocumentError:
            return -1

    follow_primary = DocumentStore.init(
        Path(tmp_root) / "follow-primary", fsync="off"
    )
    follow_primary.put("doc", workload.source, dtd, annotation)
    followed = StandbyStore.init(
        Path(tmp_root) / "follow-standby", primary_root=follow_primary.root
    )
    follow_latencies = []
    with FollowerServer(followed, listen=("127.0.0.1", 0)) as follower:
        with ShipperDaemon(
            follow_primary, connect=[follower.address], poll_interval=0.05
        ) as daemon:
            daemon.wait_caught_up(timeout=30)
            with follow_primary.open_session("doc", engine=engine) as session:
                for index, update in enumerate(updates, start=1):
                    session.propagate(update)
                    start = time.perf_counter()
                    deadline = start + 30.0
                    while time.perf_counter() < deadline:
                        if applied(followed) >= index:
                            break
                        time.sleep(0.001)
                    follow_latencies.append(time.perf_counter() - start)
            final_lag = sum(daemon.links[0].shipper.lag().values())
    followed.close()
    follow_primary.close()

    return {
        "ship_ms_per_record": ship_elapsed / len(updates) * 1000,
        "replica_rebuild_ms": rebuild * 1000,
        "replica_noop_refresh_ms": refresh * 1000,
        "follow_ship_ms_per_update": statistics.median(follow_latencies) * 1000,
        "follow_steady_lag": final_lag,
        "follow_lag_bounded": 1.0 / (1.0 + final_lag),
    }


def _served_streaming_modes(workload, length: int, tmp_root, rounds: int) -> dict:
    """ms/update for in-process durable streaming vs the same stream
    served over the wire (framed TCP to an in-process ReproServer).

    The differential is strict: the scripts coming back over the wire
    must be byte-identical to in-process serving. The ratio column
    ``served_efficiency`` (in-process time / served time, higher is
    better) is what the bench-smoke gate tracks — the wire adds JSON
    framing, checksums, event-loop dispatch, and executor hops per
    update, and this column keeps that overhead honest.
    """
    import asyncio
    import threading
    from pathlib import Path

    from repro.server import ReproServer, ServeClient

    dtd, annotation = workload.dtd, workload.annotation
    updates = _sequential_stream(workload, length)
    terms = [update.to_term() for update in updates]
    engine = ViewEngine(dtd, annotation).warm_up()

    # -- in-process baseline: a durable session, fsync off --
    inproc_times = []
    inproc_scripts = None
    for round_index in range(rounds):
        store = DocumentStore.init(
            Path(tmp_root) / f"served-inproc-{round_index}", fsync="off"
        )
        store.put("doc", workload.source, dtd, annotation)
        with store.open_session("doc", engine=engine) as durable:
            start = time.perf_counter()
            scripts = durable.serve(updates)
            inproc_times.append(time.perf_counter() - start)
        store.close()
        inproc_scripts = [script.to_term() for script in scripts]
    inproc = statistics.median(inproc_times)

    # -- served: same stream over framed TCP, one document per round --
    served_root = Path(tmp_root) / "served-server"
    store = DocumentStore.init(served_root, fsync="off")
    store.put("warmup", workload.source, dtd, annotation)
    for round_index in range(rounds):
        store.put(f"doc{round_index}", workload.source, dtd, annotation)
        store.put(f"tdoc{round_index}", workload.source, dtd, annotation)
    store.close()

    server = ReproServer(store_root=served_root, fsync="off")
    loop = asyncio.new_event_loop()
    started = threading.Event()
    address = {}

    def run_loop():
        asyncio.set_event_loop(loop)

        async def boot():
            address["hp"] = await server.start()
            started.set()

        loop.create_task(boot())
        loop.run_forever()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    assert started.wait(30), "server failed to start"
    host, port = address["hp"]
    served_times = []
    traced_times = []
    served_scripts = None
    traced_scripts = None
    try:
        with ServeClient(host, port) as client:
            client.propagate("warmup", terms[0])  # untimed schema warm-up
            for round_index in range(rounds):
                doc_id = f"doc{round_index}"
                start = time.perf_counter()
                scripts = [
                    client.propagate(doc_id, term)["script"] for term in terms
                ]
                served_times.append(time.perf_counter() - start)
                served_scripts = scripts
            # -- the same stream with full request tracing on: the
            # per-span perf_counter/contextvar cost the obs layer adds
            # when someone is actually watching --
            from repro.obs import configure as obs_configure

            obs_configure(enabled=True, sample_rate=1.0)
            try:
                for round_index in range(rounds):
                    doc_id = f"tdoc{round_index}"
                    start = time.perf_counter()
                    scripts = [
                        client.propagate(doc_id, term)["script"]
                        for term in terms
                    ]
                    traced_times.append(time.perf_counter() - start)
                    traced_scripts = scripts
            finally:
                obs_configure(enabled=False)
    finally:
        asyncio.run_coroutine_threadsafe(server.drain(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()
    served = statistics.median(served_times)
    traced = statistics.median(traced_times)

    assert served_scripts == inproc_scripts, (
        "wire-served scripts diverged from in-process serving"
    )
    assert traced_scripts == inproc_scripts, (
        "traced serving diverged from in-process serving"
    )
    per_update = 1000 / len(updates)
    return {
        "stream_length": len(updates),
        "in_process_ms_per_update": inproc * per_update,
        "served_ms_per_update": served * per_update,
        "served_overhead_ms_per_update": (served - inproc) * per_update,
        "served_efficiency": inproc / served,
        "traced_ms_per_update": traced * per_update,
        # untraced served time / traced served time — 1.0 means tracing
        # every span costs nothing; the bench-smoke gate keeps this from
        # silently decaying
        "tracing_enabled_efficiency": served / traced,
    }


class TestServedStreaming:
    def test_served_stream_matches_in_process_and_bounds_overhead(
        self, tmp_path
    ):
        workload = wide_schema(12 if SMOKE else 24, sections=8)
        modes = _served_streaming_modes(
            workload, STREAM_LENGTH, tmp_path, 2 if SMOKE else 3
        )
        print(
            f"\nserved streaming (x{modes['stream_length']}): in-process "
            f"{modes['in_process_ms_per_update']:.2f} vs served "
            f"{modes['served_ms_per_update']:.2f} ms/update (overhead "
            f"{modes['served_overhead_ms_per_update']:.2f} ms, efficiency "
            f"{modes['served_efficiency']:.2f}); traced "
            f"{modes['traced_ms_per_update']:.2f} ms/update (tracing "
            f"efficiency {modes['tracing_enabled_efficiency']:.2f})"
        )
        # byte-identity is asserted inside; in full mode also keep the
        # wire from costing more than ~20x the in-process path
        if not SMOKE:
            assert modes["served_efficiency"] >= 0.05


def run_trajectory(smoke: bool) -> dict:
    """The full perf trajectory as one JSON-serializable report."""
    repeats = 4 if smoke else 16
    rounds = 2 if smoke else 5
    stream_length = 2 if smoke else 50
    families = {
        "hospital": hospital(8 if smoke else 120),
        "wide_schema": wide_schema(12 if smoke else 24, sections=8),
    }
    workloads = {}
    for name, workload in families.items():
        print(f"[{name}] source={workload.source.size} nodes", flush=True)
        workloads[name] = {
            "source_size": workload.source.size,
            "repeated_update": _repeated_update_modes(workload, repeats, rounds),
            "streaming": _streaming_modes(workload, stream_length, rounds),
        }
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_root:
        print("[wide_schema] cold start", flush=True)
        workloads["wide_schema"]["cold_start"] = _cold_start_modes(
            families["wide_schema"], rounds, tmp_root
        )
        workloads["wide_schema"]["wal"] = _wal_modes(
            families["wide_schema"], stream_length, tmp_root, rounds
        )
        workloads["wide_schema"]["replication"] = _replication_modes(
            families["wide_schema"], stream_length, tmp_root, rounds
        )
        print("[wide_schema] served streaming", flush=True)
        workloads["wide_schema"]["served_streaming"] = _served_streaming_modes(
            families["wide_schema"], stream_length, tmp_root, rounds
        )
    print("[huge_document] sharded streaming", flush=True)
    sharded = _sharded_streaming_modes(smoke)
    workloads["huge_document"] = {
        "source_size": sharded["large_nodes"],
        "sharded_streaming": sharded,
    }
    return {
        "meta": {
            "generated_by": "benchmarks/bench_end_to_end.py --json",
            "mode": "smoke" if smoke else "full",
            "cpus": os.cpu_count(),
            "repeats": repeats,
            "rounds": rounds,
            "stream_length": stream_length,
        },
        "workloads": workloads,
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Write the end-to-end perf trajectory as JSON"
    )
    parser.add_argument("--json", required=True, help="output path")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes (what CI's bench-smoke job runs)",
    )
    args = parser.parse_args(argv)
    report = run_trajectory(args.smoke or SMOKE)
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, data in report["workloads"].items():
        if "repeated_update" in data:
            repeated = data["repeated_update"]
            streaming = data["streaming"]
            print(
                f"{name}: cold {repeated['cold_ms']:.2f} / warm "
                f"{repeated['warm_ms']:.2f} / memoized {repeated['memoized_ms']:.3f} "
                f"/ process-pool {repeated['process_pool_ms']:.2f} ms/request; "
                f"memo speedup {repeated['memoized_speedup_vs_warm']:.1f}x vs warm; "
                f"streaming session {streaming['session_ms_per_update']:.2f} "
                f"ms/update ({streaming['session_speedup_vs_transient']:.1f}x vs "
                "transient)"
            )
        if "cold_start" in data:
            cold_start = data["cold_start"]
            print(
                f"{name}: first propagation cold {cold_start['cold_ms']:.2f} / "
                f"disk-warm {cold_start['disk_warm_ms']:.2f} / memory-warm "
                f"{cold_start['memory_warm_ms']:.3f} ms (warm speedup "
                f"{cold_start['warm_speedup']:.1f}x, disk hit within "
                f"{cold_start['disk_hit_vs_memory_hit']:.1f}x of a memory hit)"
            )
        if "served_streaming" in data:
            served = data["served_streaming"]
            print(
                f"{name}: served {served['served_ms_per_update']:.2f} vs "
                f"in-process {served['in_process_ms_per_update']:.2f} ms/update "
                f"(overhead {served['served_overhead_ms_per_update']:.2f} ms, "
                f"efficiency {served['served_efficiency']:.2f}; traced "
                f"{served['traced_ms_per_update']:.2f} ms/update, tracing "
                f"efficiency {served['tracing_enabled_efficiency']:.2f})"
            )
        if "sharded_streaming" in data:
            sharded = data["sharded_streaming"]
            print(
                f"{name}: sharded {sharded['sharded_small_ms_per_update']:.2f} "
                f"ms/update at {sharded['small_nodes']} nodes / "
                f"{sharded['sharded_large_ms_per_update']:.2f} ms/update at "
                f"{sharded['large_nodes']} nodes (size independence "
                f"{sharded['size_independence']:.2f}, unsharded small "
                f"{sharded['unsharded_small_ms_per_update']:.2f} ms/update)"
            )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
