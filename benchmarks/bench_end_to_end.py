"""E6: Theorem 6 — with insertlets and a polynomial Φ, propagation runs
in time polynomial in |D| + |t| + |S| + |W|. End-to-end timings across
document sizes and workload families."""

import pytest

from repro.core import InsertletPackage, propagate, verify_propagation
from repro.generators.workloads import (
    catalog,
    deep_document,
    hospital,
    positional,
    running_example,
)


@pytest.mark.parametrize("groups", [2, 8, 32, 128])
class TestEndToEndScaling:
    def test_propagate_running_example(self, benchmark, groups):
        workload = running_example(groups)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )


FAMILIES = {
    "hospital": lambda: hospital(30),
    "catalog": lambda: catalog(30),
    "positional": lambda: positional(12),
    "deep_document": lambda: deep_document(8),
}


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
class TestWorkloadFamilies:
    def test_propagate_family(self, benchmark, family):
        workload = FAMILIES[family]()
        insertlets = InsertletPackage.minimal(workload.dtd)
        script = benchmark(
            propagate,
            workload.dtd,
            workload.annotation,
            workload.source,
            workload.update,
            factory=insertlets,
        )
        benchmark.extra_info["source_size"] = workload.source.size
        benchmark.extra_info["update_cost"] = workload.update.cost
        benchmark.extra_info["propagation_cost"] = script.cost
        assert verify_propagation(
            workload.dtd, workload.annotation, workload.source,
            workload.update, script,
        )
