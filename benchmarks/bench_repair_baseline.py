"""E7: Section 6.2 — the repair baseline vs true propagation.

Reproduces the D3 counter-example quantitatively: the baseline returns a
*closer* tree (distance 1 < cost 2) whose view is isomorphic to the
edited view, yet violates identifier-exact side-effect-freeness; on the
scaled positional workload its violation rate is measured (and is
essentially total), while propagation is correct by construction.
"""

import pytest

from repro import paperdata
from repro.generators.workloads import positional
from repro.repair import compare_with_propagation, repair_update


class TestD3CounterExample:
    def test_repair_on_d3(self, benchmark):
        dtd, annotation = paperdata.d3(), paperdata.a3()
        source = paperdata.d3_source()
        update = paperdata.d3_updated_view()
        result = benchmark(
            repair_update, dtd, annotation, source, update.output_tree
        )
        assert result.distance == 1
        benchmark.extra_info["repair_distance"] = result.distance

    def test_comparison_on_d3(self, benchmark):
        dtd, annotation = paperdata.d3(), paperdata.a3()
        source = paperdata.d3_source()
        update = paperdata.d3_updated_view()
        report = benchmark(
            compare_with_propagation, dtd, annotation, source, update
        )
        assert report.repair.distance == 1
        assert report.propagation_cost == 2
        assert report.repair_view_isomorphic
        assert not report.repair_side_effect_free
        benchmark.extra_info["verdict"] = "repair closer but wrong"


@pytest.mark.parametrize("entries", [1, 4, 8])
class TestViolationRate:
    def test_positional_workload(self, benchmark, entries):
        workload = positional(entries)

        def run():
            return compare_with_propagation(
                workload.dtd, workload.annotation, workload.source, workload.update
            )

        report = benchmark(run)
        benchmark.extra_info["repair_distance"] = report.repair.distance
        benchmark.extra_info["propagation_cost"] = report.propagation_cost
        benchmark.extra_info["side_effect_free"] = report.repair_side_effect_free
        # the baseline drops identifiers and mis-places the insertion
        assert not report.repair_side_effect_free
        assert report.repair_view_isomorphic
        assert report.repair.distance <= report.propagation_cost
