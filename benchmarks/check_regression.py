"""Fail when a fresh benchmark run regresses against the checked-in baseline.

CI's ``bench-smoke`` job runs::

    python benchmarks/bench_end_to_end.py --json /tmp/bench.json --smoke
    python benchmarks/check_regression.py \\
        --baseline BENCH_PR9.json --candidate /tmp/bench.json

Absolute times are machine-bound and useless across runners, so only
**ratio** metrics are compared — the memoized-vs-warm speedup of
repeated identical updates and the session-vs-transient speedup of the
streaming workload. A candidate ratio more than ``--tolerance`` (default
25%) below the baseline's fails the job. The baseline file carries a
dedicated ``smoke_reference`` section (per-metric minimum of several
smoke runs on the baseline machine); a smoke candidate is compared
against that, a full run against the root workloads.
"""

from __future__ import annotations

import argparse
import json
import sys

RATIO_METRICS = (
    ("repeated_update", "memoized_speedup_vs_warm"),
    ("streaming", "session_speedup_vs_transient"),
    # sharded serving: small-document latency / large-document latency —
    # 1.0 is perfect size independence, the PR-6 acceptance line is 0.5
    ("sharded_streaming", "size_independence"),
    # served streaming: in-process time / wire-served time — bounds the
    # per-update overhead the serving front-end adds (PR-7)
    ("served_streaming", "served_efficiency"),
    # untraced served time / fully-traced served time — bounds the cost
    # of turning request tracing on (PR-8)
    ("served_streaming", "tracing_enabled_efficiency"),
    # cold first-propagation time / disk-warm first-propagation time —
    # the persistent cache tier's restart win (PR-9)
    ("cold_start", "warm_speedup"),
    # 1/(1 + steady-state lag) of a followed standby after the stream
    # stops — 1.0 iff the live feed converged to zero lag (PR-10)
    ("replication", "follow_lag_bounded"),
)

# Smoke workloads are microsecond-scale, so even their *ratios* wobble
# with scheduler noise on shared runners. Caps bound what the smoke gate
# may demand: a 100x memo speedup on the baseline box still only
# requires 10x (minus tolerance) in CI — enough to prove the cache is
# alive without tripping on a 20 µs hiccup. Full-mode comparisons are
# uncapped.
SMOKE_EXPECTATION_CAPS = {
    "memoized_speedup_vs_warm": 10.0,
    "session_speedup_vs_transient": 1.0,
    "size_independence": 0.5,
    # 2-update smoke streams are dominated by per-request wire fixed
    # costs; only require the served path to stay within ~20x of the
    # in-process path (full mode compares the real ratio, uncapped)
    "served_efficiency": 0.05,
    # tracing's per-span cost is nanoseconds against microsecond-noise
    # smoke rounds; only require traced serving within 2x of untraced
    "tracing_enabled_efficiency": 0.5,
    # smoke schemas compile in single-digit milliseconds, so the disk
    # tier's restart win shrinks toward its fixed read cost; only
    # require hydration to beat recompilation by 2x in CI (full mode
    # demands the real, uncapped ratio)
    "warm_speedup": 2.0,
    # convergence is binary — a followed standby must reach zero lag in
    # smoke runs too, so the cap changes nothing and stays at 1.0
    "follow_lag_bounded": 1.0,
}


def check(baseline: dict, candidate: dict, tolerance: float) -> "list[str]":
    mode = candidate.get("meta", {}).get("mode", "full")
    if mode == "smoke" and "smoke_reference" in baseline:
        reference = baseline["smoke_reference"]["workloads"]
    else:
        reference = baseline["workloads"]
    failures: "list[str]" = []
    for family, sections in candidate["workloads"].items():
        if family not in reference:
            continue
        for section, metric in RATIO_METRICS:
            expected = reference[family].get(section, {}).get(metric)
            actual = sections.get(section, {}).get(metric)
            if expected is None or actual is None:
                continue
            if mode == "smoke" and metric in SMOKE_EXPECTATION_CAPS:
                expected = min(expected, SMOKE_EXPECTATION_CAPS[metric])
            floor = expected * (1.0 - tolerance)
            status = "ok" if actual >= floor else "REGRESSION"
            print(
                f"{family}.{section}.{metric}: candidate {actual:.2f}x vs "
                f"baseline {expected:.2f}x (floor {floor:.2f}x) [{status}]"
            )
            if actual < floor:
                failures.append(
                    f"{family}.{section}.{metric}: {actual:.2f}x < "
                    f"{floor:.2f}x (baseline {expected:.2f}x - {tolerance:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.candidate, encoding="utf-8") as handle:
        candidate = json.load(handle)
    failures = check(baseline, candidate, args.tolerance)
    if failures:
        print("\nperformance regression vs checked-in baseline:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regression beyond tolerance — baseline holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
