"""F7: Figure 7 — the optimal side-effect-free propagation of S0."""

from repro import paperdata
from repro.core import propagate, verify_propagation


class TestFig7Propagation:
    def test_full_propagation(self, benchmark):
        dtd = paperdata.d0(fig2_automata=True)
        annotation = paperdata.a0()
        source = paperdata.t0()
        update = paperdata.s0()
        script = benchmark(propagate, dtd, annotation, source, update)
        assert script.cost == 14  # Figure 7's cost, provably optimal
        assert verify_propagation(dtd, annotation, source, update, script)

        def normalise(shape):
            label, children = shape
            if label == "Ins(b)" and not children:
                label = "Ins(a)"
            return (label, tuple(normalise(child) for child in children))

        assert normalise(script.shape()) == normalise(
            paperdata.fig7_propagation().shape()
        )

    def test_figure7_script_verification(self, benchmark):
        """Time the verification of the hand-transcribed Figure 7 script."""
        dtd = paperdata.d0()
        annotation = paperdata.a0()
        source = paperdata.t0()
        update = paperdata.s0()
        fig7 = paperdata.fig7_propagation()
        ok = benchmark(
            verify_propagation, dtd, annotation, source, update, fig7
        )
        assert ok
