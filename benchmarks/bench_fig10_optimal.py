"""F10: Figure 10 — the optimal propagation graph G*_{n0} and the
Nop-over-Ins selected path."""

from repro import paperdata
from repro.core import PreferenceChooser, propagation_graphs


class TestFig10Optimal:
    def test_optimal_subgraph_construction(self, benchmark):
        collection = propagation_graphs(
            paperdata.d0(fig2_automata=True),
            paperdata.a0(),
            paperdata.t0(),
            paperdata.s0(),
        )

        def build_optimal():
            collection._optimal.clear()  # measure a cold build
            return collection.optimal("n0")

        optimal = benchmark(build_optimal)
        assert optimal.cost == 14
        assert optimal.n_edges < collection["n0"].n_edges

    def test_paper_path_selected(self, benchmark):
        collection = propagation_graphs(
            paperdata.d0(fig2_automata=True),
            paperdata.a0(),
            paperdata.t0(),
            paperdata.s0(),
        )
        optimal = collection.optimal("n0")
        chooser = PreferenceChooser()  # Nop over Del over Ins, as in the paper
        path = benchmark(chooser.choose, optimal)
        assert [edge.display() for edge in path] == [
            "Del(a)", "Del(b)", "Del(d)", "Nop(a)", "Nop(c)",
            "Ins(d)", "Ins(a)", "Ins(b)", "Nop(d)",
        ]
