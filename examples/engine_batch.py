#!/usr/bin/env python3
"""The serving tier, bottom to top: engine, registry, session.

Three layers amortise the work of answering view updates:

1. a :class:`repro.ViewEngine` compiles the schema artifacts (view DTD,
   minimal-tree tables, visibility tables) once per ``(DTD, Annotation)``;
2. an :class:`repro.EngineRegistry` shares those engines across callers
   and tenants, keyed by a canonical schema hash with LRU eviction —
   the free functions serve from a process-wide default registry;
3. a :class:`repro.DocumentSession` pins one hot document and carries
   its view, subtree sizes, and fresh-identifier map across a stream of
   sequential updates.

Every layer returns byte-identical scripts to the cold path — the demo
asserts it at each step.

Run:  python examples/engine_batch.py
"""

import time

from repro import EngineRegistry, ViewEngine, propagate
from repro.generators.workloads import wide_schema

BATCH = 8


def main() -> None:
    workload = wide_schema(40)
    dtd, annotation = workload.dtd, workload.annotation
    print(f"schema: {len(dtd.alphabet)} element types, "
          f"document: {workload.source.size} nodes, "
          f"update cost: {workload.update.cost}")

    updates = [workload.update] * BATCH

    # -- cold: a transient engine per request re-derives the view DTD
    # and visibility tables every time (only DTD-memoized tables carry) --
    start = time.perf_counter()
    cold_scripts = [
        ViewEngine(dtd, annotation).propagate(workload.source, update)
        for update in updates
    ]
    cold = time.perf_counter() - start

    # -- warm: one compiled engine serves the whole batch -----------------
    engine = ViewEngine(dtd, annotation).warm_up()
    start = time.perf_counter()
    warm_scripts = engine.propagate_many(workload.source, updates)
    warm = time.perf_counter() - start

    assert all(
        got.to_term() == expected.to_term()
        for got, expected in zip(warm_scripts, cold_scripts)
    ), "engine and cold scripts must be byte-identical"

    print(f"\ncold (transient engine): {cold / BATCH * 1000:7.2f} ms/update")
    print(f"warm (ViewEngine):       {warm / BATCH * 1000:7.2f} ms/update")
    print(f"speedup: {cold / warm:.1f}x — same scripts, byte for byte")

    # -- multi-tenant: a registry hands every caller the same engine ------
    registry = EngineRegistry(capacity=64)
    first = registry.get_or_compile(dtd, annotation, warm=True)
    second = registry.get_or_compile(dtd, annotation)
    assert first is second, "one compiled engine per schema"
    print(f"\nregistry: {registry.stats}")
    print(f"schema hash: {first.schema_hash[:16]}…")
    # the free function serves from the process default registry, so even
    # one-shot callers stop recompiling after their first request:
    free_script = propagate(dtd, annotation, workload.source, workload.update)
    assert free_script.to_term() == cold_scripts[0].to_term()

    # -- hot document: a session carries per-document caches forward ------
    session = first.session(workload.source)
    script = session.propagate(workload.update, verify=True)
    assert script.to_term() == cold_scripts[0].to_term()
    print(f"\nsession after one update: {session.stats}")
    print(f"document evolved to {session.source.size} nodes; "
          f"view cached, {session.stats.size_entries_carried} size entries carried")

    print("\nEvery propagation is schema-compliant and side-effect free:")
    ok = all(
        engine.verify(workload.source, update, script)
        for update, script in zip(updates, warm_scripts)
    )
    print(f"verified: {ok}")
    assert ok


if __name__ == "__main__":
    main()
