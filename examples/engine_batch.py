#!/usr/bin/env python3
"""Compile once, serve many: the ViewEngine amortisation demo.

A server answering view updates against one schema should not re-derive
the view DTD, minimal-tree tables, and insertion factory on every
request. This example compiles a :class:`repro.ViewEngine` for a wide
schema (161 element types — the shape of real document schemas), serves
a batch of updates through :meth:`propagate_many`, and times it against
the legacy free-function path, asserting the scripts are identical.

Run:  python examples/engine_batch.py
"""

import time

from repro import ViewEngine, propagate
from repro.generators.workloads import wide_schema

BATCH = 8


def main() -> None:
    workload = wide_schema(40)
    dtd, annotation = workload.dtd, workload.annotation
    print(f"schema: {len(dtd.alphabet)} element types, "
          f"document: {workload.source.size} nodes, "
          f"update cost: {workload.update.cost}")

    updates = [workload.update] * BATCH

    # -- cold: the free function re-derives the view DTD and visibility
    # tables per request (only the DTD-memoized tables are reused) ----------
    start = time.perf_counter()
    cold_scripts = [
        propagate(dtd, annotation, workload.source, update)
        for update in updates
    ]
    cold = time.perf_counter() - start

    # -- warm: one compiled engine serves the whole batch --------------------
    engine = ViewEngine(dtd, annotation).warm_up()
    start = time.perf_counter()
    warm_scripts = engine.propagate_many(workload.source, updates)
    warm = time.perf_counter() - start

    assert all(
        got.to_term() == expected.to_term()
        for got, expected in zip(warm_scripts, cold_scripts)
    ), "engine and free-function scripts must be byte-identical"

    print(f"\ncold (free function): {cold / BATCH * 1000:7.2f} ms/update")
    print(f"warm (ViewEngine):    {warm / BATCH * 1000:7.2f} ms/update")
    print(f"speedup: {cold / warm:.1f}x — same scripts, byte for byte")
    print("\nEvery propagation is schema-compliant and side-effect free:")
    ok = all(
        engine.verify(workload.source, update, script)
        for update, script in zip(updates, warm_scripts)
    )
    print(f"verified: {ok}")
    assert ok


if __name__ == "__main__":
    main()
