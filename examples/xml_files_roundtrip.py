#!/usr/bin/env python3
"""Working with real XML: parse → view → edit → propagate → serialise.

Everything in the other examples uses term notation; this one runs the
same pipeline on actual XML text with a classic ``<!ELEMENT …>`` DTD and
an annotation in the textual directive format, and writes the updated
document back out as XML.

Run:  python examples/xml_files_roundtrip.py
"""

from repro import (
    Annotation,
    UpdateBuilder,
    parse_dtd,
    propagate,
    tree_from_xml,
    tree_to_xml,
    verify_propagation,
)
from repro.xmltree import parse_term

DTD_TEXT = """
<!ELEMENT library (shelf*)>
<!ELEMENT shelf   (label, book*)>
<!ELEMENT book    (title, author+, appraisal?)>
<!ELEMENT label   (#PCDATA)>
<!ELEMENT title   (#PCDATA)>
<!ELEMENT author  (#PCDATA)>
<!ELEMENT appraisal (#PCDATA)>
"""

ANNOTATION_TEXT = """
# public catalogue: internal appraisals are not exposed
hide book appraisal
"""

DOCUMENT = """
<library id="lib">
  <shelf id="s1">
    <label id="s1l"/>
    <book id="b1">
      <title id="b1t"/>
      <author id="b1a"/>
      <appraisal id="b1v"/>
    </book>
    <book id="b2">
      <title id="b2t"/>
      <author id="b2a"/>
      <author id="b2b"/>
    </book>
  </shelf>
</library>
"""


def main() -> None:
    dtd = parse_dtd(DTD_TEXT)
    annotation = Annotation.parse(ANNOTATION_TEXT)
    source = tree_from_xml(DOCUMENT)
    assert dtd.validates(source)

    view = annotation.view(source)
    print("Public catalogue view (appraisals hidden):")
    print(tree_to_xml(view))

    # a cataloguer swaps one book for a new edition and adds another
    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.replace("b1", parse_term("book#b1new(title#b1newt, author#b1newa)"))
    edit.insert("s1", parse_term("book#b3(title#b3t, author#b3a)"))
    update = edit.script()

    result = propagate(dtd, annotation, source, update)
    assert verify_propagation(dtd, annotation, source, update, result)
    new_source = result.output_tree

    print("\nUpdated library document:")
    print(tree_to_xml(new_source))

    print("\nNotes:")
    print(" * b1's hidden appraisal b1v left with the old edition;")
    print(" * the new books carry no appraisal — the schema makes it optional,")
    print("   so the cheapest propagation does not invent one;")
    print(" * all surviving nodes kept their id= attributes through the")
    print("   round-trip, which is what side-effect-freeness is about.")
    assert "b1v" not in new_source
    assert dtd.validates(new_source)


if __name__ == "__main__":
    main()
