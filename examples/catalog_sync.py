#!/usr/bin/env python3
"""Insertlets: propagating storefront edits into a catalog with mandatory
hidden fields.

The ``product`` element *requires* a hidden ``margin`` child. When the
storefront editor (who cannot see margins) creates a product through the
view, the propagation must invent one. Section 5 of the paper introduces
*insertlet packages* for exactly this: the administrator supplies the
default fragments to use, instead of letting the system pick an
arbitrary minimal tree.

This example also shows the preference function Φ at work: counting how
many optimal propagations exist and how the chooser picks one.

Run:  python examples/catalog_sync.py
"""

from repro import (
    Annotation,
    InsertletPackage,
    UpdateBuilder,
    count_min_propagations,
    default_registry,
    parse_dtd,
    parse_term,
)

CATALOG_DTD = """
<!ELEMENT catalog  (product*)>
<!ELEMENT product  (title, price, (feature)*, margin, supplier?)>
<!ELEMENT title    (#PCDATA)>
<!ELEMENT price    (#PCDATA)>
<!ELEMENT feature  (#PCDATA)>
<!ELEMENT margin   (#PCDATA)>
<!ELEMENT supplier (contact, contract)>
<!ELEMENT contact  (#PCDATA)>
<!ELEMENT contract (#PCDATA)>
"""


def main() -> None:
    dtd = parse_dtd(CATALOG_DTD)
    annotation = Annotation.hiding(("product", "margin"), ("product", "supplier"))

    # -- the administrator's insertlet for the mandatory hidden field -----------
    insertlets = InsertletPackage.from_terms(dtd, {"margin": "margin"})
    print(f"Insertlet package: {insertlets!r}")

    # one engine per (schema, annotation, insertlets): the storefront
    # server fetches it from the process registry — insertlet packages
    # are content-hashed, so every worker shares the same compiled engine
    engine = default_registry().get_or_compile(dtd, annotation, factory=insertlets)

    source = parse_term(
        "catalog#c("
        "product#p1(title#t1, price#pr1, feature#f1, margin#m1,"
        "           supplier#s1(contact#sc1, contract#sk1)),"
        "product#p2(title#t2, price#pr2, margin#m2))"
    )
    view = engine.view(source)
    print("\nStorefront editor's view:")
    print(view.pretty())

    # -- the editor adds a product and prunes a feature ------------------------
    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.insert("c", parse_term("product#p3(title#t3, price#pr3, feature#f3)"))
    edit.delete("f1")
    update = edit.script()

    # the editor keeps working on this catalog, so pin it in a session:
    # the view, size table, and fresh-id map carry over between edits
    session = engine.session(source)
    result = session.propagate(update, verify=True)
    new_source = session.source
    print(f"\nPropagated catalog (cost {result.cost}):")
    print(new_source.pretty())

    assert "margin" in new_source.child_labels("p3")
    print("\nThe new product received a margin node the editor never saw,")
    print("because the schema demands one — supplied by the insertlet.")

    # -- a follow-up edit against the *new* view, same session ------------------
    follow_up = UpdateBuilder(session.view, forbidden_ids=new_source.nodes())
    follow_up.delete("p2")
    second = session.propagate(follow_up.script(), verify=True)
    print(f"\nFollow-up deletion propagated (cost {second.cost}); "
          f"session stats: {session.stats}")

    # -- how many optimal propagations were there? ------------------------------
    collection = engine.propagation_graphs(source, update)
    count = count_min_propagations(collection)
    print(f"\nOptimal propagations for this update: {count}")
    print("The preference function Φ (Nop > Del > Ins) picked one of them")
    print("deterministically; rerunning always yields the same script.")


if __name__ == "__main__":
    main()
