#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Walks through Figures 1-10 of *The View Update Problem for XML*:
a DTD, an annotation-defined view, a user edit of the view, and the
computed schema-compliant, side-effect-free propagation.

Run:  python examples/quickstart.py
"""

from repro import (
    Annotation,
    DTD,
    UpdateBuilder,
    ViewEngine,
    parse_term,
    propagate,
    verify_propagation,
)


def main() -> None:
    # -- Figure 2: the schema ------------------------------------------------
    dtd = DTD({"r": "(a,(b|c),d)*", "d": "((a|b),c)*"})
    print("DTD D0:")
    print(dtd.describe())

    # -- Figure 3: the annotation (who may see what) -------------------------
    # The engine compiles every schema-derived artifact — the view DTD,
    # minimal-tree tables, the insertion factory — once for (D0, A0).
    annotation = Annotation.hiding(("r", "b"), ("r", "c"), ("d", "a"), ("d", "b"))
    engine = ViewEngine(dtd, annotation)
    derived = engine.view_dtd
    print("\nView DTD (derived):")
    print(f"r -> {derived.rule_regex('r').to_dtd()}")
    print(f"d -> {derived.rule_regex('d').to_dtd()}")

    # -- Figure 1: the source document ---------------------------------------
    source = parse_term(
        "r#n0(a#n1, b#n2, d#n3(a#n7, c#n8), a#n4, c#n5, d#n6(b#n9, c#n10))"
    )
    print(f"\nSource document t0 ({source.size} nodes):")
    print(source.pretty())

    # -- what the user sees ---------------------------------------------------
    view = engine.view(source)
    print(f"\nThe view A0(t0) ({view.size} nodes):")
    print(view.pretty())

    # -- Figure 4: the user edits the view ------------------------------------
    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.delete("n1")                                        # drop the first a
    edit.delete("n3")                                        # and its d-group
    edit.insert_after("n4", parse_term("d#n11(c#n13, c#n14)"))
    edit.insert_after("n11", parse_term("a#n12"))
    edit.insert("n6", parse_term("c#n15"))                   # extend the last d
    update = edit.script()
    print(f"\nThe view update S0 (cost {update.cost}):")
    print(update.pretty())

    # -- Figures 7-10: propagate ----------------------------------------------
    result = engine.propagate(source, update)
    print(f"\nPropagation S0' (cost {result.cost}):")
    print(result.pretty())

    # the free function gives the same script, paying compilation per call
    assert propagate(dtd, annotation, source, update) == result

    new_source = result.output_tree
    print(f"\nNew source document ({new_source.size} nodes):")
    print(new_source.pretty())

    # -- the two correctness criteria ------------------------------------------
    assert verify_propagation(dtd, annotation, source, update, result)
    assert dtd.validates(new_source)                      # schema compliant
    assert annotation.view(new_source) == update.output_tree  # side-effect free
    print("\nschema compliant: yes")
    print("side-effect free: yes (view of the new source IS the edited view,")
    print("                       node identifiers included)")


if __name__ == "__main__":
    main()
