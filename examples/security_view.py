#!/usr/bin/env python3
"""Security views: a ward clerk edits hospital records through a view.

The paper motivates annotation-defined views by secure access to XML
databases [9, 10]. Here an administrator publishes a view of the
hospital database that hides diagnoses and billing from ward clerks;
the clerk admits and discharges patients *through the view*, and the
propagation reconciles the hidden data:

* discharging a patient deletes their hidden diagnosis and bill too
  (no dangling confidential data);
* admitting a patient inserts only what the clerk typed — no hidden
  fields are invented unless the schema forces them.

Run:  python examples/security_view.py
"""

from repro import (
    Annotation,
    SecurityPolicy,
    UpdateBuilder,
    parse_dtd,
    parse_term,
    propagate,
    verify_propagation,
)

HOSPITAL_DTD = """
<!ELEMENT hospital (ward*)>
<!ELEMENT ward     (name, patient*)>
<!ELEMENT patient  (name, admission, (symptom | treatment | diagnosis)*, bill?)>
<!ELEMENT name     (#PCDATA)>
<!ELEMENT admission (#PCDATA)>
<!ELEMENT symptom  (#PCDATA)>
<!ELEMENT treatment (#PCDATA)>
<!ELEMENT diagnosis (#PCDATA)>
<!ELEMENT bill     (#PCDATA)>
"""


def main() -> None:
    dtd = parse_dtd(HOSPITAL_DTD)

    # -- the administrator writes the policy ---------------------------------
    policy = (
        SecurityPolicy()
        .deny("patient", "diagnosis", "medical confidentiality")
        .deny("patient", "bill", "finance only")
    )
    print("Security policy:")
    for line in policy.audit():
        print(f"  {line}")
    annotation: Annotation = policy.annotation(dtd.alphabet)

    # -- the database ----------------------------------------------------------
    source = parse_term(
        "hospital#h(ward#w(name#wn,"
        " patient#p1(name#p1n, admission#p1a, symptom#p1s,"
        "            diagnosis#p1d, bill#p1b),"
        " patient#p2(name#p2n, admission#p2a, treatment#p2t)))"
    )
    print(f"\nDatabase ({source.size} nodes):")
    print(source.pretty())

    view = annotation.view(source)
    print(f"\nWhat the ward clerk sees ({view.size} nodes — no diagnosis, no bill):")
    print(view.pretty())

    # -- the clerk works on the view --------------------------------------------
    edit = UpdateBuilder(view, forbidden_ids=source.nodes())
    edit.delete("p1")  # discharge patient 1
    edit.insert(
        "w",
        parse_term("patient#p3(name#p3n, admission#p3a, symptom#p3s)"),
    )  # admit patient 3
    update = edit.script()
    print(f"\nClerk's update (cost {update.cost}): discharge p1, admit p3")

    # -- propagation --------------------------------------------------------------
    result = propagate(dtd, annotation, source, update)
    assert verify_propagation(dtd, annotation, source, update, result)
    new_source = result.output_tree
    print(f"\nNew database ({new_source.size} nodes):")
    print(new_source.pretty())

    # the hidden diagnosis and bill of p1 are gone with the patient
    assert "p1d" not in new_source
    assert "p1b" not in new_source
    print("\np1's hidden diagnosis and bill were deleted with the patient:")
    print("  no confidential orphans remain.")
    # the new patient has exactly the fields the clerk entered
    assert new_source.child_labels("p3") == ("name", "admission", "symptom")
    print("p3 carries exactly the fields the clerk typed — the schema does")
    print("  not force any hidden field here, so none was invented.")


if __name__ == "__main__":
    main()
