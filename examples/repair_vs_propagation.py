#!/usr/bin/env python3
"""Section 6.2: why closest-tree repair is the wrong tool.

The paper's D3 example: ``r → b·(c+ε)·(a·c)*`` with ``b`` and ``a``
hidden, source ``t = r(b, a, c)``, so the user sees ``r(c)``. The user
inserts a second ``c`` *after* the existing one.

* The repair baseline (identifier-blind closest tree) returns
  ``t1 = r(b, c, a, c)`` — distance 1, but now the *old* ``c`` sits in
  the second position: the view of ``t1`` is ``r(c_new, c_old)``, not
  the ``r(c_old, c_new)`` the user produced. A side effect.
* The paper's propagation returns ``t2 = r(b, a, c, a, c)`` — distance
  2, and exactly side-effect free.

Run:  python examples/repair_vs_propagation.py
"""

from repro import paperdata, propagate
from repro.repair import compare_with_propagation, repair_update


def main() -> None:
    dtd = paperdata.d3()
    annotation = paperdata.a3()
    source = paperdata.d3_source()
    update = paperdata.d3_updated_view()

    print("DTD D3:")
    print(dtd.describe())
    print(f"\nSource t = {source.to_term()}")
    print(f"View A3(t) = {annotation.view(source).to_term()}")
    print(f"User update: insert c#u0 AFTER the existing c#m3")
    print(f"Edited view Out(S) = {update.output_tree.to_term()}")

    # -- the baseline --------------------------------------------------------
    repair = repair_update(dtd, annotation, source, update.output_tree)
    print(f"\nRepair baseline (sees only the edited view, no identifiers):")
    print(f"  result   = {repair.tree.to_term(with_ids=False)}")
    print(f"  distance = {repair.distance}")
    repaired_view = annotation.view(repair.tree)
    print(f"  its view = {repaired_view.to_term()}")
    print(f"  the old node m3 is now child #{repaired_view.index_in_parent('m3') + 1}"
          " — the user put it first!")

    # -- the propagation -------------------------------------------------------
    script = propagate(dtd, annotation, source, update)
    print(f"\nPropagation (paper's algorithm):")
    print(f"  result = {script.output_tree.to_term(with_ids=False)}")
    print(f"  cost   = {script.cost}")
    print(f"  its view = {annotation.view(script.output_tree).to_term()}")

    # -- the verdict -------------------------------------------------------------
    report = compare_with_propagation(dtd, annotation, source, update)
    print("\nVerdict:")
    print(report.summary())
    print(
        "\nThe repaired tree is closer to the original "
        f"({report.repair.distance} < {report.propagation_cost}) and its view "
        "is isomorphic to the edited view — yet it is NOT side-effect free:"
        "\ndropping node identifiers loses the relative position of the"
        "\nexisting and the inserted node, exactly as Section 6.2 argues."
    )


if __name__ == "__main__":
    main()
